"""Determinism guards for the event-kernel fast paths.

The kernel carries three wall-clock optimizations — a zero-delay bypass
deque, a recycled Timeout pool, and ``__slots__``/local-binding in the
hot loop. All of them must preserve the exact (time, sequence) FIFO
ordering: same seed, same program ⇒ bit-identical event order.
"""

from repro.core import FLOW_END, DfiRuntime, Endpoint, Schema
from repro.simnet import Cluster
from repro.simnet.kernel import Environment

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))


# -- raw kernel ordering -------------------------------------------------

def test_zero_delay_events_keep_fifo_order_with_timed_events():
    """Zero-delay timeouts (bypass deque) and equal-time heap timeouts
    must process in exact schedule order."""
    env = Environment()
    trace = []

    def proc(label, delays):
        for i, delay in enumerate(delays):
            yield env.timeout(delay)
            trace.append((env.now, label, i))

    # a alternates zero-delay with 1ns waits; b/c only zero-delay; d is
    # scheduled at the same instants via equal timed delays.
    env.process(proc("a", [0.0, 1.0, 0.0, 1.0, 0.0]))
    env.process(proc("b", [0.0] * 5))
    env.process(proc("c", [0.0] * 5))
    env.process(proc("d", [1.0, 1.0, 0.0, 0.0]))
    env.run()
    baseline = list(trace)

    trace.clear()
    env = Environment()

    def proc2(label, delays):
        for i, delay in enumerate(delays):
            yield env.timeout(delay)
            trace.append((env.now, label, i))

    env.process(proc2("a", [0.0, 1.0, 0.0, 1.0, 0.0]))
    env.process(proc2("b", [0.0] * 5))
    env.process(proc2("c", [0.0] * 5))
    env.process(proc2("d", [1.0, 1.0, 0.0, 0.0]))
    env.run()
    assert trace == baseline
    # FIFO among same-time events: first instant runs a, b, c in
    # process-creation order.
    first_instant = [entry for entry in baseline if entry[0] == 0.0]
    assert [label for _t, label, _i in first_instant[:3]] == ["a", "b", "c"]


def test_pooled_timeouts_do_not_leak_state():
    """Recycled Timeout objects must come back clean: fresh value, fresh
    callbacks, correct delay."""
    env = Environment()
    seen = []

    def worker(index):
        for step in range(50):
            event = env.pooled_timeout(float(index), value=(index, step))
            got = yield event
            seen.append((env.now, got))

    for index in range(4):
        env.process(worker(index))
    env.run()
    assert len(seen) == 200
    for _now, (index, step) in seen:
        assert 0 <= index < 4 and 0 <= step < 50


def test_condition_index_map_matches_event_positions():
    """AnyOf must report the position of the triggering event (the O(1)
    id→index map replacing ``list.index``)."""
    env = Environment()
    results = []

    def waiter():
        events = [env.timeout(3.0), env.timeout(1.0), env.timeout(2.0)]
        index, value = yield env.any_of(events)
        results.append((index, value, env.now))

    env.process(waiter())
    env.run()
    assert results == [(1, None, 1.0)]


# -- whole-simulation determinism ---------------------------------------

def _run_shuffle_once(seed):
    cluster = Cluster(node_count=3, seed=seed)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("f", [Endpoint(0, 0)],
                          [Endpoint(1, 0), Endpoint(2, 0)], SCHEMA,
                          shuffle_key="key")
    received = {0: [], 1: []}
    checkpoints = []

    def source_thread():
        source = yield from dfi.open_source("f", 0)
        for i in range(600):
            yield from source.push((i * 31 + 7, i))
            if i % 100 == 99:
                checkpoints.append(cluster.env.now)
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("f", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                checkpoints.append(cluster.env.now)
                return
            received[index].append(item)

    cluster.env.process(source_thread())
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    return cluster.env.now, checkpoints, received


def test_same_seed_runs_are_bit_identical():
    assert _run_shuffle_once(3) == _run_shuffle_once(3)


def test_simulated_times_are_exact_floats():
    """The end-to-end time must be reproducible to full float precision —
    the guarantee the figure benches rely on."""
    end1, checkpoints1, _ = _run_shuffle_once(11)
    end2, checkpoints2, _ = _run_shuffle_once(11)
    assert end1 == end2
    assert all(a == b for a, b in zip(checkpoints1, checkpoints2))
