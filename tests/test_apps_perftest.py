"""Tests for the perftest baselines (ib_write_lat / ib_write_bw)."""

import pytest

from repro.apps.perftest import ib_write_bw, ib_write_lat
from repro.common import HardwareProfile
from repro.common.errors import ConfigurationError
from repro.common.units import GIB, MICROSECONDS, SECONDS
from repro.simnet import Cluster


def test_write_lat_small_message_rtt():
    """Small-message ping-pong RTT is about two wire latencies plus NIC
    and poll costs — the Fig. 7b baseline anchor (~2 us on EDR)."""
    cluster = Cluster(node_count=2)
    rtts = ib_write_lat(cluster, size=16, iterations=50)
    assert len(rtts) == 50
    median = sorted(rtts)[25]
    assert 2 * cluster.profile.wire_latency < median < 4 * MICROSECONDS


def test_write_lat_grows_with_message_size():
    cluster = Cluster(node_count=2)
    small = sorted(ib_write_lat(cluster, size=16, iterations=20))[10]
    cluster2 = Cluster(node_count=2)
    large = sorted(ib_write_lat(cluster2, size=16384, iterations=20))[10]
    assert large > small + 2 * 16384 / cluster2.profile.link_bandwidth * 0.8


def test_write_lat_steady_state():
    """After the first iteration the RTT is stable (deterministic model)."""
    cluster = Cluster(node_count=2)
    rtts = ib_write_lat(cluster, size=64, iterations=30)
    assert max(rtts[1:]) - min(rtts[1:]) < 1.0


def test_write_lat_validation():
    cluster = Cluster(node_count=2)
    with pytest.raises(ConfigurationError):
        ib_write_lat(cluster, size=0)
    with pytest.raises(ConfigurationError):
        ib_write_lat(cluster, size=8, iterations=0)


def test_write_bw_reaches_link_speed_for_large_messages():
    cluster = Cluster(node_count=2)
    bandwidth = ib_write_bw(cluster, size=65536, iterations=500)
    assert bandwidth > 0.9 * cluster.profile.link_bandwidth


def test_write_bw_small_messages_nic_limited():
    """Tiny writes are WQE-rate limited, far below the wire speed."""
    cluster = Cluster(node_count=2)
    bandwidth = ib_write_bw(cluster, size=16, iterations=2000)
    nic_limit = 16 / cluster.profile.nic_wqe_service
    assert bandwidth < nic_limit * 1.1
    assert bandwidth < 0.2 * cluster.profile.link_bandwidth


def test_write_bw_validation():
    cluster = Cluster(node_count=2)
    with pytest.raises(ConfigurationError):
        ib_write_bw(cluster, size=1, window=0)
