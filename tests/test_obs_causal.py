"""Tests for the causal-edge recorder and the critical-path engine.

Covers the backward walk (exact decomposition, gap-to-cpu residual,
deterministic tie-breaks, context categories never walked), the bounded
edge log, ``Histogram`` percentile conventions, the end-to-end blame
report on a real shuffle, truncation warnings, the 32:1 incast
acceptance bar (>=50% of completion-time inflation attributed to
congestion hold-off + ECN pacing), fault-plan attribution, byte-exact
blame JSON across shard counts, and the ``repro.obs.analyze`` CLI
(golden output + exit-code contract).
"""

import json
import os
import subprocess
import sys

import pytest

from repro import obs
from repro.bench.flows import measure_incast
from repro.core import FLOW_END, DfiRuntime, Endpoint, FlowOptions, Schema
from repro.obs import (
    CausalError,
    CausalRecorder,
    Histogram,
    analyze_cluster,
    blame_json,
    chrome_trace,
    critical_path,
    export_chrome_trace,
    flow_report,
    render_blame,
)
from repro.obs.analyze import _ring_dropped
from repro.obs.causal import (
    BLAME_CATEGORIES,
    blame_breakdown,
    validate_export,
)
from repro.simnet import Cluster, CongestionConfig, FaultPlan, congestion
from repro.simnet.faults import LinkDown

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))
SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                   os.pardir, "src")


def _edge(t_child, t_parent, category, node=0, src=None, tid="t",
          flow="f"):
    return (t_child, t_parent, category, node,
            node if src is None else src, tid, flow)


def _blame_sum(report):
    return sum(report["blame"].values())


class TestBackwardWalk:
    def test_exact_decomposition(self):
        edges = [_edge(10.0, 0.0, "wire"), _edge(15.0, 10.0, "nic_arb")]
        steps = critical_path(edges, t_close=20.0, t_open=0.0)
        blame = blame_breakdown(steps)
        assert blame["wire"] == 10.0
        assert blame["nic_arb"] == 5.0
        assert blame["cpu"] == 5.0  # 15..20 residual
        assert sum(blame.values()) == 20.0
        # Chronological, gap-free cover of the window.
        assert steps[0]["start"] == 0.0 and steps[-1]["end"] == 20.0
        for before, after in zip(steps, steps[1:]):
            assert before["end"] == after["start"]

    def test_gaps_become_cpu(self):
        steps = critical_path([_edge(5.0, 2.0, "wire")], t_close=10.0)
        blame = blame_breakdown(steps)
        assert blame["wire"] == 3.0
        assert blame["cpu"] == 7.0  # 0..2 head gap + 5..10 tail gap

    def test_tie_break_prefers_wire(self):
        # Same (t_child, t_parent): the category priority decides, and
        # the loser contributes nothing (its span is already covered).
        edges = [_edge(10.0, 2.0, "credit_stall"), _edge(10.0, 2.0, "wire")]
        blame = blame_breakdown(critical_path(edges, t_close=10.0))
        assert blame["wire"] == 8.0
        assert blame["credit_stall"] == 0.0

    def test_tie_break_prefers_longer_span(self):
        # Same t_child: the smaller t_parent explains more time.
        edges = [_edge(10.0, 6.0, "wire"), _edge(10.0, 1.0, "wire")]
        steps = critical_path(edges, t_close=10.0)
        wire = [s for s in steps if s["category"] == "wire"]
        assert len(wire) == 1 and wire[0]["start"] == 1.0

    def test_input_order_does_not_matter(self):
        edges = [_edge(4.0, 0.0, "wire"), _edge(9.0, 4.0, "credit_stall"),
                 _edge(9.0, 4.0, "nic_arb"), _edge(12.0, 9.0, "ecn_pacing")]
        forward = critical_path(list(edges), t_close=12.0)
        backward = critical_path(list(reversed(edges)), t_close=12.0)
        assert forward == backward

    def test_context_categories_never_walked(self):
        edges = [_edge(10.0, 0.0, "seg"), _edge(8.0, 2.0, "shard_crossing")]
        blame = blame_breakdown(critical_path(edges, t_close=10.0))
        assert blame["cpu"] == 10.0
        assert blame["shard_crossing"] == 0.0
        assert set(blame) == set(BLAME_CATEGORIES)


class TestHistogramPercentiles:
    def test_upper_bound_convention(self):
        hist = Histogram()
        for _ in range(90):
            hist.record(1)
        for _ in range(10):
            hist.record(1000)
        assert hist.percentile(0.50) == 1
        assert hist.percentile(0.90) == 1
        assert hist.percentile(0.99) == 1000  # 1023 clamped to max
        assert hist.percentiles() == {"p50": 1, "p90": 1, "p99": 1000}

    def test_estimate_never_below_true_percentile(self):
        hist = Histogram()
        for value in (4, 5, 6, 7):  # one power-of-two bucket
            hist.record(value)
        assert hist.percentile(0.50) == 7  # bucket upper bound = max

    def test_empty_and_edge_cases(self):
        hist = Histogram()
        assert hist.percentile(0.99) == 0
        hist.record(5)
        assert hist.percentile(0.0) == 5  # p<=0 -> min
        assert hist.percentile(1.0) == 5

    def test_insertion_order_invariant(self):
        values = [3, 900, 17, 3, 64, 900, 1]
        first, second = Histogram(), Histogram()
        for v in values:
            first.record(v)
        for v in reversed(values):
            second.record(v)
        assert first.percentiles() == second.percentiles()


class TestRecorderAndValidation:
    def _env(self):
        class _Env:
            now = 0.0
        return _Env()

    def test_zero_span_edges_skipped(self):
        recorder = CausalRecorder(self._env())
        recorder.edge(5.0, 5.0, "wire", 0, "t")
        recorder.edge(4.0, 5.0, "wire", 0, "t")
        assert recorder.edges() == []

    def test_bounded_log_counts_drops(self):
        recorder = CausalRecorder(self._env(), capacity=4)
        for i in range(10):
            recorder.edge(float(i + 1), float(i), "wire", 0, "t")
        records = recorder.edges()
        assert len(records) == 4
        assert recorder.dropped() == {0: 6}
        # Oldest overwritten, simulated order preserved.
        assert [r[0] for r in records] == [7.0, 8.0, 9.0, 10.0]

    def test_export_is_json_safe_and_valid(self):
        recorder = CausalRecorder(self._env())
        recorder.open("f", 0)
        recorder.edge(3.0, 1.0, "wire", 0, "t", "f")
        recorder.close("f", 0)
        export = recorder.export()
        assert json.loads(json.dumps(export)) == export
        validate_export(export)  # must not raise

    @pytest.mark.parametrize("mutate", [
        lambda e: e[:6],                       # wrong arity
        lambda e: ["x"] + e[1:],               # non-numeric timestamp
        lambda e: [e[1], e[0]] + e[2:],        # non-positive span
        lambda e: e[:2] + ["bogus"] + e[3:],   # unknown category
        lambda e: e[:5] + [7, e[6]],           # tid not a string
    ])
    def test_validate_rejects_malformed_edges(self, mutate):
        export = {"edges": [mutate([3.0, 1.0, "wire", 0, 0, "t", "f"])],
                  "closes": {"f": [[3.0, 0]]}, "opens": {}, "dropped": {}}
        with pytest.raises(CausalError):
            validate_export(export)

    def test_flow_report_requires_close_marker(self):
        with pytest.raises(CausalError):
            flow_report({"edges": [], "closes": {}, "opens": {}})


def _run_shuffle(seed=0, tuples=256, trace_capacity=None,
                 edge_capacity=None):
    """One traced 1:2 shuffle with causal recording on."""
    cluster = Cluster(node_count=3, seed=seed)
    cluster.enable_observability(trace=True, causal=True)
    if edge_capacity is not None:
        cluster.obs.causal.capacity = edge_capacity
    options = (FlowOptions(segment_size=128) if trace_capacity is None
               else FlowOptions(segment_size=128, trace=trace_capacity))
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow("flow", [Endpoint(0, 0)],
                          [Endpoint(1, 0), Endpoint(2, 0)],
                          SCHEMA, shuffle_key="key", options=options)

    def src():
        source = yield from dfi.open_source("flow", 0)
        for i in range(tuples):
            yield from source.push((i, i))
        yield from source.close()

    def tgt(index):
        target = yield from dfi.open_target("flow", index)
        while (yield from target.consume()) is not FLOW_END:
            pass

    cluster.env.process(src())
    for index in range(2):
        cluster.env.process(tgt(index))
    cluster.run()
    return cluster


class TestEndToEndBlame:
    def test_blame_sums_to_window(self):
        report = analyze_cluster(_run_shuffle())
        assert report["flow"] == "flow"
        assert report["total_ns"] > 0
        assert _blame_sum(report) == pytest.approx(
            report["total_ns"], rel=1e-9, abs=1e-6)
        assert report["blame"]["shard_crossing"] == 0.0
        assert report["blame"]["wire"] > 0  # data crossed links
        assert report["stragglers"]  # both targets ranked
        assert not report["warnings"]

    def test_trace_embeds_and_flow_arrows(self):
        document = chrome_trace(_run_shuffle())
        assert "reproObs" in document and "reproCausal" in document
        validate_export(document["reproCausal"])
        phases = {event["ph"] for event in document["traceEvents"]}
        assert {"s", "f"} <= phases  # cross-node critical-path arrows
        arrows = [event for event in document["traceEvents"]
                  if event["ph"] in ("s", "f")]
        assert all(event["name"] == "critical_path" for event in arrows)
        assert json.loads(json.dumps(document)) == document

    def test_same_seed_reruns_byte_identical(self):
        first = blame_json(analyze_cluster(_run_shuffle(seed=11)))
        second = blame_json(analyze_cluster(_run_shuffle(seed=11)))
        assert first == second

    def test_truncated_rings_warn(self):
        cluster = _run_shuffle(tuples=1024, trace_capacity=4,
                               edge_capacity=16)
        report = analyze_cluster(cluster)
        assert cluster.obs.causal.dropped()  # edge logs overflowed
        text = "\n".join(report["warnings"])
        assert "truncated edge logs" in text
        assert "trace ring" in text
        rendered = render_blame(report)
        assert "WARNING" in rendered


class TestIncastBlame:
    def test_congestion_explains_incast_inflation(self):
        """ISSUE acceptance: on a 32:1 incast under the datacenter
        congestion profile, >=50% of the completion-time inflation over
        an uncontended 1:1 run of the same per-sender payload must be
        blamed on congestion_holdoff + ecn_pacing."""
        obs.set_default_observability(True, trace=True, causal=True)
        congestion.set_default_config(CongestionConfig.datacenter())
        try:
            solo = measure_incast(1, bytes_per_sender=64 << 10)
            fan = measure_incast(32, bytes_per_sender=64 << 10)
        finally:
            congestion.set_default_config(None)
            obs.set_default_observability(False)
        inflation = fan["elapsed_ns"] - solo["elapsed_ns"]
        assert inflation > 0
        report = analyze_cluster(fan["cluster"])
        assert _blame_sum(report) == pytest.approx(
            report["total_ns"], rel=1e-9, abs=1e-6)
        explained = (report["blame"]["congestion_holdoff"]
                     + report["blame"]["ecn_pacing"])
        assert explained >= 0.5 * inflation, (explained, inflation)
        # The fan-in target tops the hold-off ranking.
        assert report["hot_targets"][0]["node"] == 0


class TestFaultAttribution:
    def test_outage_tail_is_captured(self):
        cluster = Cluster(node_count=2, seed=1)
        plan = FaultPlan(entries=[
            LinkDown(a=0, b=1, at=20_000.0, duration=150_000.0)])
        cluster.install_faults(plan, detection_timeout=2_000_000.0)
        cluster.enable_observability(trace=True, causal=True)
        dfi = DfiRuntime(cluster)
        options = FlowOptions(segment_size=256, source_segments=4,
                              target_segments=8, credit_threshold=2,
                              peer_timeout=4_000_000.0,
                              max_backoff_retries=64, max_retransmits=64)
        dfi.init_shuffle_flow("ft", [Endpoint(0, 0)], [Endpoint(1, 0)],
                              SCHEMA, shuffle_key="key", options=options)

        def src():
            source = yield from dfi.open_source("ft", 0)
            for i in range(3000):
                yield from source.push((i, 1))
            yield from source.close()

        def tgt():
            target = yield from dfi.open_target("ft", 0)
            while (yield from target.consume()) is not FLOW_END:
                pass

        cluster.env.process(src())
        cluster.env.process(tgt())
        cluster.run(until=20_000_000.0)
        report = analyze_cluster(cluster)
        # The run rode through a 150 us outage; the window must dwarf
        # the fault-free run and decompose exactly.
        assert report["total_ns"] > 150_000.0
        assert _blame_sum(report) == pytest.approx(
            report["total_ns"], rel=1e-9, abs=1e-6)
        # Backoff edges during the outage are recorded, and the blocked
        # sender's stall dominates the inflated window.
        recorded = {edge[2] for log in cluster.obs.causal.logs.values()
                    for edge in log.records()}
        assert "fault_backoff" in recorded
        stalled = (report["blame"]["credit_stall"]
                   + report["blame"]["fault_backoff"])
        assert stalled >= 0.5 * report["total_ns"]


class TestShardDeterminism:
    def _blame(self, shards):
        cluster = Cluster(node_count=5, seed=7, shards=shards)
        plan = FaultPlan.random(7, node_ids=range(5), start=50_000.0,
                                horizon=800_000.0, entry_count=2,
                                protected=(0, 1, 3))
        cluster.install_faults(plan, detection_timeout=60_000.0)
        cluster.install_congestion(CongestionConfig.datacenter())
        cluster.enable_observability(trace=True, causal=True)
        dfi = DfiRuntime(cluster)
        options = FlowOptions(segment_size=256, source_segments=4,
                              target_segments=8, credit_threshold=2,
                              peer_timeout=200_000.0,
                              max_backoff_retries=32, max_retransmits=8)
        dfi.init_shuffle_flow("det", ["node1|0", "node2|0"],
                              ["node3|0", "node4|0"], SCHEMA,
                              shuffle_key="key", options=options)

        def source_thread(index):
            source = yield from dfi.open_source("det", index)
            for i in range(2000):
                yield from source.push((i, 1))
            yield from source.close()

        def target_thread(index):
            target = yield from dfi.open_target("det", index)
            while (yield from target.consume()) is not FLOW_END:
                pass

        for node_id, index in ((1, 0), (2, 1)):
            cluster.node(node_id).spawn(source_thread(index))
        for node_id, index in ((3, 0), (4, 1)):
            cluster.node(node_id).spawn(target_thread(index))
        cluster.run(until=8_000_000.0)
        return blame_json(analyze_cluster(cluster))

    def test_blame_json_shard_invariant(self):
        """Same seed, faults + congestion stacked: the canonical blame
        JSON must be byte-identical for shards=1 and shards=4."""
        assert self._blame(None) == self._blame(4)


class TestAnalyzeCli:
    def _export(self, tmp_path, mangle=None):
        cluster = _run_shuffle(seed=5)
        path = tmp_path / "run.trace.json"
        document = export_chrome_trace(cluster, str(path))
        if mangle is not None:
            mangle(document)
            path.write_text(json.dumps(document))
        return cluster, path, document

    def _run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.obs.analyze", *args],
            capture_output=True, text=True, env=env)

    def test_json_output_matches_in_process_report(self, tmp_path):
        _cluster, path, document = self._export(tmp_path)
        expected = blame_json(flow_report(
            document["reproCausal"],
            ring_dropped=_ring_dropped(document)))
        proc = self._run_cli(str(path), "--json")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == expected + "\n"

    def test_table_output_matches_render_blame(self, tmp_path):
        _cluster, path, document = self._export(tmp_path)
        report = flow_report(document["reproCausal"],
                             ring_dropped=_ring_dropped(document))
        proc = self._run_cli(str(path), "--flow", "flow")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == render_blame(report) + "\n"

    def test_malformed_edge_exits_2(self, tmp_path):
        def corrupt(document):
            document["reproCausal"]["edges"][0][2] = "bogus"
        _cluster, path, _document = self._export(tmp_path, corrupt)
        proc = self._run_cli(str(path), "--json")
        assert proc.returncode == 2
        assert "unknown category" in proc.stderr

    def test_missing_causal_section_exits_2(self, tmp_path):
        def strip(document):
            del document["reproCausal"]
        _cluster, path, _document = self._export(tmp_path, strip)
        proc = self._run_cli(str(path))
        assert proc.returncode == 2
        assert "reproCausal" in proc.stderr

    def test_unknown_flow_exits_2(self, tmp_path):
        _cluster, path, _document = self._export(tmp_path)
        proc = self._run_cli(str(path), "--flow", "nope")
        assert proc.returncode == 2

    def test_unreadable_trace_exits_2(self, tmp_path):
        proc = self._run_cli(str(tmp_path / "missing.json"))
        assert proc.returncode == 2
