"""Bit-exact equivalence of the fused fast path and the event path.

Steady-state event elision (``post_write_train_fused``) is a wall-clock
optimization only: every externally observable timestamp — when each
``push_batch`` returns (credit/CQ backpressure), when each consumed
batch arrives, when the flow ends — must be bit-identical with the fast
path on and off, across seeds, ring geometries, and trains that don't
divide evenly into segments. The tests here run the same workload twice
(``config.FASTPATH_ENABLED`` toggled in-process; channels read it at
endpoint construction) and compare full timelines with ``==``, while
also asserting the fused run executed strictly fewer kernel events —
the equivalence is never vacuous.

De-elision: a fault or congestion plane installed *mid-run* (between
flushes) must flip ``QueuePair.steady_state()`` on the very next flush
and keep the timeline bit-identical to the event path under the same
mid-run install. Shard-crossing channels must never fuse at all.
"""

import pytest

from repro.common import config
from repro.core import (
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Schema,
)
from repro.simnet import Cluster
from repro.simnet.faults import FaultPlan, link_degrade

_SCHEMA = Schema(("key", "uint64"), ("pad", 24))
_PAD = b"p" * 24
_TARGETS = 2


@pytest.fixture(autouse=True)
def _restore_fastpath_flag():
    saved = config.FASTPATH_ENABLED
    yield
    config.FASTPATH_ENABLED = saved


def _traced_shuffle(fastpath, *, seed=0, options=None, count=4096,
                    batch=1024, node_count=1 + _TARGETS, mid_run=None):
    """Run one 1:N shuffle and return ``(timeline, events_executed)``.

    The timeline captures every externally observable instant: the
    simulated time each source batch push returned, the close time, and
    each target's per-batch ``(arrival time, batch length)`` sequence.
    ``mid_run`` (if given) is called as ``mid_run(cluster, source)`` from
    the source thread after half the batches, between flushes.
    """
    config.FASTPATH_ENABLED = fastpath
    cluster = Cluster(node_count=node_count, seed=seed)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow(
        "eq", [Endpoint(0, 0)],
        [Endpoint(1 + n, 0) for n in range(_TARGETS)],
        _SCHEMA, shuffle_key="key",
        options=options if options is not None else FlowOptions())
    batches = [[(i * 2654435761 % (1 << 64), _PAD)
                for i in range(start, min(start + batch, count))]
               for start in range(0, count, batch)]
    timeline = {"push": [], "close": None,
                "deliver": [[] for _ in range(_TARGETS)],
                "end": [None] * _TARGETS}

    def source_thread():
        source = yield from dfi.open_source("eq", 0)
        half = len(batches) // 2
        for index, chunk in enumerate(batches):
            if mid_run is not None and index == half:
                mid_run(cluster, source)
            yield from source.push_batch(chunk)
            timeline["push"].append(cluster.now)
        yield from source.close()
        timeline["close"] = cluster.now

    def target_thread(index):
        target = yield from dfi.open_target("eq", index)
        while True:
            got = yield from target.consume_batch()
            if got is FLOW_END:
                break
            timeline["deliver"][index].append((cluster.now, len(got)))
        timeline["end"][index] = cluster.now

    events_before = cluster.env.events_executed
    cluster.node(0).spawn(source_thread())
    for n in range(_TARGETS):
        cluster.node(1 + n).spawn(target_thread(n))
    cluster.run()
    events = cluster.env.events_executed - events_before
    delivered = sum(length for deliveries in timeline["deliver"]
                    for _, length in deliveries)
    assert delivered == count
    return timeline, events


def _assert_equivalent(**kwargs):
    on, events_on = _traced_shuffle(True, **kwargs)
    off, events_off = _traced_shuffle(False, **kwargs)
    assert on == off
    assert events_on < events_off, \
        "fast path never engaged: equivalence would be vacuous"


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_bit_identical_across_seeds(seed):
    _assert_equivalent(seed=seed)


@pytest.mark.parametrize("options", [
    FlowOptions(source_segments=2, target_segments=4, credit_threshold=2),
    FlowOptions(target_segments=16, credit_threshold=4),
    FlowOptions(source_segments=8, target_segments=8, credit_threshold=3),
], ids=["small-rings", "deep-target", "mid-rings"])
def test_bit_identical_across_ring_sizes(options):
    _assert_equivalent(options=options)


@pytest.mark.parametrize("count,batch", [
    (4096, 700),    # trains end in a partial batch
    (3333, 1000),   # neither count nor batch aligns with segments
    (4099, 1024),   # full-segment trains plus a 3-tuple tail
])
def test_bit_identical_non_divisible_trains(count, batch):
    _assert_equivalent(count=count, batch=batch)


def _assert_de_elides(install):
    """``install(cluster)`` mid-run must flip ``steady_state()`` off on
    every source channel and leave the timeline bit-identical to the
    event path under the same mid-run install."""
    flipped = {}

    def mid_run(cluster, source):
        channels = source._channels
        assert all(channel.qp.steady_state() for channel in channels)
        install(cluster)
        flipped["ok"] = not any(channel.qp.steady_state()
                                for channel in channels)

    on, _ = _traced_shuffle(True, mid_run=mid_run, node_count=2 + _TARGETS)
    assert flipped["ok"], "installed plane did not de-elide"
    off, _ = _traced_shuffle(False, mid_run=mid_run, node_count=2 + _TARGETS)
    assert on == off


def test_mid_run_fault_install_de_elides():
    # Degrade an idle node (the extra node 3) far from the flow: the
    # plane is *active* (so every subsequent flush takes the event path)
    # while the flow's own links and timing are untouched.
    def install(cluster):
        cluster.install_faults(FaultPlan(
            [link_degrade(1 + _TARGETS, at=cluster.now + 1.0,
                          duration=10.0, factor=2.0)]))

    _assert_de_elides(install)


def test_mid_run_congestion_install_de_elides():
    from repro.simnet.congestion import CongestionConfig

    def install(cluster):
        cluster.install_congestion(CongestionConfig.unbounded())

    _assert_de_elides(install)


def test_shard_crossing_channels_never_fuse():
    """Under a sharded kernel, only same-lane channels fuse: the fused
    commit runs at the source lane's clock, so a cross-shard macro would
    bypass the inter-lane ordering merge."""
    config.FASTPATH_ENABLED = True
    cluster = Cluster(node_count=3, shards=2, shard_map=[0, 0, 1])
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow(
        "sharded", [Endpoint(0, 0)], [Endpoint(1, 0), Endpoint(2, 0)],
        _SCHEMA, shuffle_key="key", options=FlowOptions())
    fused = {}

    def source_thread():
        source = yield from dfi.open_source("sharded", 0)
        fused.update({channel.qp.remote_node.node_id: channel._fused
                      for channel in source._channels})
        for start in range(0, 2048, 1024):
            yield from source.push_batch(
                [(i * 2654435761, _PAD) for i in range(start, start + 1024)])
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("sharded", index)
        while (yield from target.consume_batch()) is not FLOW_END:
            pass

    cluster.node(0).spawn(source_thread())
    cluster.node(1).spawn(target_thread(0))
    cluster.node(2).spawn(target_thread(1))
    cluster.run()
    assert fused[1] is True      # source shard 0 -> target shard 0
    assert fused[2] is False     # source shard 0 -> target shard 1
