"""Chaos tests: seeded random fault schedules against every flow type.

The invariant under test is **no hang**: whatever a random (but seeded,
hence reproducible) fault plan does to a run — crashes, link outages,
partitions, degrades — every endpoint process must finish within the
simulation horizon with a *legible* outcome: normal completion, a flow
error from the taxonomy (FlowPeerFailedError / FlowTimeoutError /
FlowAbortedError), or death by crash injection. Raw transport errors
leaking to the application, or a process still blocked at the horizon,
are failures.

The same harness doubles as the chaos determinism check: one seed, run
twice, must produce bit-identical outcomes and tuple counts.
"""

import pytest

from repro.common.errors import (
    FlowAbortedError,
    FlowPeerFailedError,
    FlowTimeoutError,
)
from repro.core import (
    FLOW_END,
    AggregationSpec,
    DfiRuntime,
    FlowOptions,
    Optimization,
    Schema,
)
from repro.simnet import Cluster, CongestionConfig, FaultPlan

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))
SEEDS = range(5)
FLOW_TYPES = ("shuffle", "replicate", "combiner")
MODES = (Optimization.BANDWIDTH, Optimization.LATENCY)

#: Simulated horizon: generous against every bounded wait in the stack
#: (fault window 0.05-0.8 ms, detection 60 µs, peer timeout 200 µs,
#: 32 backoff rounds ≈ 1.4 ms worst case).
HORIZON = 8_000_000.0
DETECTION = 60_000.0

ALLOWED = {"completed", "killed", "FlowPeerFailedError",
           "FlowTimeoutError", "FlowAbortedError"}
_FLOW_ERRORS = (FlowPeerFailedError, FlowTimeoutError, FlowAbortedError)


#: Tight band so the 256-byte chaos segments actually trip marking and
#: PFC when a congested cell runs — the stock datacenter() band (24 KiB)
#: would never see the small chaos transfers, whose egress queues peak at
#: two in-flight segments (544 bytes).
CHAOS_CONGESTION = CongestionConfig(
    queue_capacity=512, kmin=64, kmax=256,
    min_rate_fraction=0.05, cnp_interval=8_000.0,
    recovery_period=8_000.0, ai_fraction=0.02, hai_fraction=0.1,
    recovery_jitter=0.1)


def _options(flow_type, optimization, seed, congestion=None):
    return FlowOptions(
        segment_size=256, source_segments=4, target_segments=8,
        credit_threshold=2,
        peer_timeout=200_000.0,
        max_backoff_retries=32,
        max_retransmits=8,
        # Exercise both failure policies across the seed matrix.
        on_target_failure="reroute" if seed % 2 else "abort",
        multicast=(flow_type == "replicate"
                   and optimization is Optimization.LATENCY),
        congestion=congestion)


def _run_chaos(seed, flow_type, optimization, congestion=None):
    """One chaos run; returns (outcomes, tuple counts, final time)."""
    cluster = Cluster(node_count=5, seed=seed)
    plan = FaultPlan.random(seed, node_ids=range(5), start=50_000.0,
                            horizon=800_000.0, entry_count=3,
                            protected=(0,))  # node 0: registry master
    cluster.install_faults(plan, detection_timeout=DETECTION)
    dfi = DfiRuntime(cluster)
    options = _options(flow_type, optimization, seed, congestion)

    if flow_type == "shuffle":
        dfi.init_shuffle_flow("chaos", ["node1|0", "node2|0"],
                              ["node3|0", "node4|0"], SCHEMA,
                              shuffle_key="key", optimization=optimization,
                              options=options)
        sources = [(1, 0), (2, 1)]
        targets = [(3, 0), (4, 1)]
    elif flow_type == "replicate":
        dfi.init_replicate_flow("chaos", ["node1|0"],
                                ["node2|0", "node3|0", "node4|0"], SCHEMA,
                                optimization=optimization, options=options)
        sources = [(1, 0)]
        targets = [(2, 0), (3, 1), (4, 2)]
    else:
        dfi.init_combiner_flow("chaos", ["node1|0", "node2|0", "node3|0"],
                               "node4|0", SCHEMA,
                               aggregation=AggregationSpec("sum", "key",
                                                           "value"),
                               optimization=optimization, options=options)
        sources = [(1, 0), (2, 1), (3, 2)]
        targets = [(4, 0)]

    outcomes = {}
    counts = {}

    def source_thread(key, index):
        try:
            source = yield from dfi.open_source("chaos", index)
            for i in range(600):
                yield from source.push((i, 1))
            yield from source.close()
            outcomes[key] = "completed"
        except _FLOW_ERRORS as exc:
            outcomes[key] = type(exc).__name__

    def target_thread(key, index):
        counts[key] = 0
        try:
            target = yield from dfi.open_target("chaos", index)
            if flow_type == "combiner":
                while (yield from target.consume_step()) is not FLOW_END:
                    pass
                counts[key] = target.tuples_aggregated
            else:
                while True:
                    item = yield from target.consume()
                    if item is FLOW_END:
                        break
                    counts[key] += 1
            outcomes[key] = "completed"
        except _FLOW_ERRORS as exc:
            outcomes[key] = type(exc).__name__

    procs = {}
    for node_id, index in sources:
        key = ("src", index)
        procs[key] = cluster.node(node_id).spawn(source_thread(key, index))
    for node_id, index in targets:
        key = ("tgt", index)
        procs[key] = cluster.node(node_id).spawn(target_thread(key, index))

    cluster.run(until=HORIZON)

    for key, proc in procs.items():
        if key not in outcomes:
            # Crash injection kills the whole process: that is a legible
            # outcome. Anything else still unfinished at the horizon is a
            # hang — exactly what this suite exists to catch.
            assert not proc.is_alive, (
                f"hang: endpoint {key} still blocked at the horizon "
                f"(seed={seed}, flow={flow_type}, "
                f"mode={optimization.value}, plan={plan.entries})")
            outcomes[key] = "killed"
    return outcomes, counts, cluster.now


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("flow_type", FLOW_TYPES)
@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_no_hang(seed, flow_type, mode):
    outcomes, _counts, _now = _run_chaos(seed, flow_type, mode)
    assert set(outcomes.values()) <= ALLOWED, outcomes


def test_chaos_matrix_actually_injects_failures():
    """Sanity check on the harness itself: across the whole seed matrix
    at least some runs must experience a fault-induced outcome —
    otherwise the no-hang assertions above are vacuous."""
    observed = set()
    for seed in SEEDS:
        for flow_type in FLOW_TYPES:
            outcomes, _counts, _now = _run_chaos(
                seed, flow_type, Optimization.BANDWIDTH)
            observed |= set(outcomes.values())
    assert observed - {"completed"}, "no chaos run saw any failure"


@pytest.mark.parametrize("flow_type", FLOW_TYPES)
def test_chaos_runs_are_bit_reproducible(flow_type):
    for mode in MODES:
        first = _run_chaos(3, flow_type, mode)
        second = _run_chaos(3, flow_type, mode)
        assert first == second


# -- congestion x fault cells ------------------------------------------------
# Same invariant, harder conditions: random fault plans (including
# link_degrade, which rescales the very bandwidth the virtual queues and
# rate limiters are calibrated against) on top of an active congestion
# plane with a band tight enough to throttle the chaos traffic. The rate
# floor plus self-clearing grace must keep every endpoint legible.

@pytest.mark.parametrize("flow_type", FLOW_TYPES)
@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_congested_no_hang(seed, flow_type):
    outcomes, _counts, _now = _run_chaos(
        seed, flow_type, Optimization.BANDWIDTH,
        congestion=CHAOS_CONGESTION)
    assert set(outcomes.values()) <= ALLOWED, outcomes


@pytest.mark.parametrize("flow_type", FLOW_TYPES)
def test_chaos_congested_bit_reproducible(flow_type):
    first = _run_chaos(3, flow_type, Optimization.BANDWIDTH,
                       congestion=CHAOS_CONGESTION)
    second = _run_chaos(3, flow_type, Optimization.BANDWIDTH,
                        congestion=CHAOS_CONGESTION)
    assert first == second


def test_chaos_congested_cells_actually_throttle():
    """Vacuity guard for the congested matrix: across the seeds, at
    least one shuffle cell's congestion plane must have done real work
    (packets observed, and marks or PFC stalls recorded) — otherwise the
    congested no-hang assertions test nothing beyond the plain matrix."""
    packets = marks_or_stalls = 0
    for seed in SEEDS:
        _outcomes, _counts, now = _run_chaos(
            seed, "shuffle", Optimization.BANDWIDTH,
            congestion=CHAOS_CONGESTION)
        assert now <= HORIZON
    # Re-run one cell with the cluster exposed to read the plane tallies.
    cluster = Cluster(node_count=5, seed=1)
    cluster.install_faults(FaultPlan(), detection_timeout=DETECTION)
    dfi = DfiRuntime(cluster)
    options = _options("shuffle", Optimization.BANDWIDTH, 1,
                       CHAOS_CONGESTION)
    dfi.init_shuffle_flow("chaos", ["node1|0", "node2|0"],
                          ["node3|0", "node4|0"], SCHEMA,
                          shuffle_key="key", options=options)

    def src(index):
        source = yield from dfi.open_source("chaos", index)
        for i in range(600):
            yield from source.push((i, 1))
        yield from source.close()

    def tgt(index):
        target = yield from dfi.open_target("chaos", index)
        while (yield from target.consume()) is not FLOW_END:
            pass

    cluster.node(1).spawn(src(0))
    cluster.node(2).spawn(src(1))
    cluster.node(3).spawn(tgt(0))
    cluster.node(4).spawn(tgt(1))
    cluster.run(until=HORIZON)
    stats = cluster.congestion.stats()
    packets = stats["packets_seen"]
    marks_or_stalls = stats["ecn_marks"] + stats["pfc_stalls"]
    assert packets > 0
    assert marks_or_stalls > 0, stats
