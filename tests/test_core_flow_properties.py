"""Property-based and adversarial tests for flow invariants.

Hypothesis drives randomized workloads through the flows and checks the
end-to-end invariants the protocol must preserve:

* every pushed tuple is consumed exactly once (no loss, no duplication);
* per-channel FIFO order;
* global-order agreement across replicate targets, under loss;
* determinism of complete runs.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common import HardwareProfile
from repro.core import (
    FLOW_END,
    DfiRuntime,
    FlowOptions,
    GapNotification,
    Optimization,
    Ordering,
    Schema,
)
from repro.simnet import Cluster

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))

_SETTINGS = settings(max_examples=12, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def run_shuffle(tuples_per_source, sources, targets, optimization,
                options, seed=0):
    cluster = Cluster(node_count=max(sources, targets) + 1, seed=seed)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow(
        "prop",
        [f"node0|{t}" for t in range(sources)],
        [f"node{1 + n % (cluster.node_count - 1)}|{n}"
         for n in range(targets)],
        SCHEMA, shuffle_key="key", optimization=optimization,
        options=options)
    received = {i: [] for i in range(targets)}

    def source_thread(index):
        source = yield from dfi.open_source("prop", index)
        for i, values in enumerate(tuples_per_source[index]):
            yield from source.push(values)
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("prop", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            received[index].append(item)

    for s in range(sources):
        cluster.env.process(source_thread(s))
    for t in range(targets):
        cluster.env.process(target_thread(t))
    cluster.run()
    return received


@_SETTINGS
@given(st.lists(st.tuples(st.integers(0, 2 ** 63), st.integers(0, 2 ** 63)),
                min_size=0, max_size=300),
       st.sampled_from([Optimization.BANDWIDTH, Optimization.LATENCY]),
       st.integers(1, 3), st.integers(1, 3))
def test_exactly_once_delivery(tuples, optimization, sources, targets):
    """Every pushed tuple arrives exactly once, across modes/topologies."""
    per_source = [tuples[i::sources] for i in range(sources)]
    options = FlowOptions(segment_size=256, source_segments=4,
                          target_segments=4, credit_threshold=2)
    received = run_shuffle(per_source, sources, targets, optimization,
                           options)
    all_received = sorted(item for rows in received.values()
                          for item in rows)
    assert all_received == sorted(tuples)


@_SETTINGS
@given(st.integers(10, 400), st.integers(2, 6))
def test_channel_fifo_order_property(count, target_count):
    """Tuples pushed by one source arrive in order at each target."""
    tuples = [(i, i) for i in range(count)]
    options = FlowOptions(segment_size=128, source_segments=2,
                          target_segments=3, credit_threshold=1)
    received = run_shuffle([tuples], 1, target_count,
                           Optimization.BANDWIDTH, options)
    for rows in received.values():
        keys = [k for k, _v in rows]
        assert keys == sorted(keys)


@_SETTINGS
@given(st.integers(1, 300), st.floats(0.0, 0.15), st.integers(0, 1000))
def test_ordered_multicast_agreement_under_loss(count, loss, seed):
    """All targets of an ordered replicate flow deliver the identical
    sequence, for any loss rate the retransmission path can recover."""
    profile = HardwareProfile(multicast_loss_probability=loss)
    cluster = Cluster(node_count=4, profile=profile, seed=seed)
    dfi = DfiRuntime(cluster)
    dfi.init_replicate_flow(
        "rep", ["node0|0"], ["node1|0", "node2|0", "node3|0"], SCHEMA,
        optimization=Optimization.LATENCY, ordering=Ordering.GLOBAL,
        options=FlowOptions(multicast=True, retransmit_timeout=15_000))
    received = {i: [] for i in range(3)}

    def source_thread(env):
        source = yield from dfi.open_source("rep", 0)
        for i in range(count):
            yield from source.push((i, i * 3))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("rep", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            received[index].append(item)

    cluster.env.process(source_thread(cluster.env))
    for i in range(3):
        cluster.env.process(target_thread(i))
    cluster.run()
    assert received[0] == received[1] == received[2]
    assert received[0] == [(i, i * 3) for i in range(count)]


@_SETTINGS
@given(st.integers(0, 10 ** 6))
def test_complete_run_determinism(seed):
    """Identical seeds produce bit-identical runs (timing included)."""
    def run_once():
        tuples = [(i * 7 % 97, i) for i in range(200)]
        options = FlowOptions(segment_size=256, source_segments=4,
                              target_segments=4, credit_threshold=2)
        cluster = Cluster(node_count=3, seed=seed)
        dfi = DfiRuntime(cluster)
        dfi.init_shuffle_flow("det", ["node0|0"], ["node1|0", "node2|0"],
                              SCHEMA, shuffle_key="key", options=options)
        out = []

        def source_thread(env):
            source = yield from dfi.open_source("det", 0)
            for values in tuples:
                yield from source.push(values)
            yield from source.close()

        def target_thread(index):
            target = yield from dfi.open_target("det", index)
            while True:
                item = yield from target.consume()
                if item is FLOW_END:
                    return
                out.append((index, item, cluster.now))

        cluster.env.process(source_thread(cluster.env))
        cluster.env.process(target_thread(0))
        cluster.env.process(target_thread(1))
        cluster.run()
        return out, cluster.now

    first = run_once()
    second = run_once()
    assert first == second


def test_gap_notify_delivered_prefix_is_subsequence():
    """Under heavy loss with application-side skips, whatever is
    delivered is a subsequence of the pushed order on every target."""
    profile = HardwareProfile(multicast_loss_probability=0.3)
    cluster = Cluster(node_count=3, profile=profile, seed=99)
    dfi = DfiRuntime(cluster)
    dfi.init_replicate_flow(
        "rep", ["node0|0"], ["node1|0", "node2|0"], SCHEMA,
        optimization=Optimization.LATENCY, ordering=Ordering.GLOBAL,
        options=FlowOptions(multicast=True, gap_notify=True,
                            retransmit_timeout=8_000))
    received = {0: [], 1: []}

    def source_thread(env):
        source = yield from dfi.open_source("rep", 0)
        for i in range(300):
            yield from source.push((i, i))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("rep", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            if isinstance(item, GapNotification):
                target.skip_gap(item.missing_seq)
                continue
            received[index].append(item[0])

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    pushed = list(range(300))
    for keys in received.values():
        assert keys == sorted(keys)  # monotone: a subsequence of pushed
        assert set(keys) <= set(pushed)
        assert len(keys) > 0
