"""Edge-case tests for the kernel and sync primitives."""

import pytest

from repro.common.errors import SimulationError
from repro.simnet import Cluster, Environment, Store
from repro.simnet.link import Link


# -- conditions with pre-triggered children -----------------------------------

def test_all_of_with_already_processed_children():
    env = Environment()
    early = env.timeout(1, value="a")
    env.run(until=5)  # early is processed now

    def proc(env):
        values = yield env.all_of([early, env.timeout(2, value="b")])
        return values

    p = env.process(proc(env))
    env.run()
    assert p.value == ["a", "b"]


def test_any_of_with_already_processed_child():
    env = Environment()
    early = env.timeout(1, value="ready")
    env.run(until=5)

    def proc(env):
        index, value = yield env.any_of([env.timeout(100), early])
        return index, value

    p = env.process(proc(env))
    env.run(p)
    assert p.value == (1, "ready")


def test_all_of_failure_propagates():
    env = Environment()
    gate = env.event()

    def proc(env):
        try:
            yield env.all_of([env.timeout(10), gate])
        except ValueError:
            return "caught"

    p = env.process(proc(env))
    gate.fail(ValueError("child failed"))
    env.run()
    assert p.value == "caught"


def test_condition_rejects_cross_kernel_events():
    env_a = Environment()
    env_b = Environment()
    with pytest.raises(SimulationError, match="different kernels"):
        env_a.all_of([env_a.timeout(1), env_b.timeout(1)])


# -- process edge cases -------------------------------------------------------

def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError, match="generator"):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_event_value_before_trigger_rejected():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_interrupt_while_waiting_on_store():
    env = Environment()
    store = Store(env)

    def consumer(env):
        try:
            yield store.get()
        except Exception as exc:
            return type(exc).__name__

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt()

    victim = env.process(consumer(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == "Interrupt"


def test_chained_immediate_events_no_recursion():
    """A long chain of already-triggered events resumes iteratively."""
    env = Environment()

    def proc(env):
        total = 0
        for i in range(5000):
            done = env.event()
            done.succeed(i)
            # An event that is triggered but not yet processed.
            total += yield done
        return total

    p = env.process(proc(env))
    env.run()
    assert p.value == sum(range(5000))


# -- link utilization accounting ------------------------------------------

def test_link_utilization_counts_transmission_time_only():
    link = Link("l", bandwidth=1.0)
    link.reserve(100, earliest=0)
    link.reserve(100, earliest=500)  # gap from 100 to 500 is idle
    assert link.utilization(600) == pytest.approx(200 / 600)


def test_priority_reservation_does_not_block_bulk():
    link = Link("l", bandwidth=1.0)
    link.reserve(1000, earliest=0)
    start, end = link.reserve_priority(16, earliest=100)
    assert (start, end) == (100, 116)  # interleaves with the bulk
    bulk_start, _bulk_end = link.reserve(100, earliest=0)
    assert bulk_start == 1000  # bulk queue position unaffected


# -- fabric control-message priority -------------------------------------------

def test_control_unicast_bypasses_bulk_queue():
    cluster = Cluster(node_count=2)
    times = {}

    def sender(cluster):
        # Fill the uplink with ~80 us of bulk traffic.
        for _ in range(10):
            cluster.fabric.unicast(cluster.node(0), cluster.node(1),
                                   100_000)
        control = cluster.fabric.unicast(cluster.node(0), cluster.node(1),
                                         16, control=True)
        yield control
        times["control"] = cluster.env.now

    cluster.env.process(sender(cluster))
    cluster.run()
    bulk_drain = 10 * 100_000 / cluster.profile.link_bandwidth
    assert times["control"] < bulk_drain / 2  # did not wait for the queue
