"""Batched push paths: ``push_batch`` / ``push_bytes`` correctness.

The batched APIs are wall-clock optimizations — they must deliver exactly
the same tuples to exactly the same targets as one-by-one pushes, stay
deterministic across same-seed runs, and reject malformed input.
"""

import pytest

from repro.common.errors import FlowError
from repro.core import (
    FLOW_END,
    DfiRuntime,
    Endpoint,
    Optimization,
    Schema,
)
from repro.core.routing import key_hash_router, radix_router
from repro.simnet import Cluster

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))


def build(node_count, seed=0):
    cluster = Cluster(node_count=node_count, seed=seed)
    return cluster, DfiRuntime(cluster)


def run_flow(cluster, dfi, name, source_fn):
    descriptor = dfi.registry.descriptor(name)
    received = {i: [] for i in range(descriptor.target_count)}

    def source_thread(index):
        source = yield from dfi.open_source(name, index)
        yield from source_fn(source, index)
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target(name, index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            received[index].append(item)

    for s in range(descriptor.source_count):
        cluster.env.process(source_thread(s))
    for t in range(descriptor.target_count):
        cluster.env.process(target_thread(t))
    cluster.run()
    return received


TUPLES = [(i * 7919 + 3, i) for i in range(700)]


def _per_tuple(source, _index):
    for values in TUPLES:
        yield from source.push(values)


def _batched(source, _index):
    for start in range(0, len(TUPLES), 100):
        yield from source.push_batch(TUPLES[start:start + 100])


# -- equivalence with per-tuple pushes -----------------------------------

@pytest.mark.parametrize("optimization",
                         [Optimization.BANDWIDTH, Optimization.LATENCY])
def test_push_batch_matches_per_tuple_delivery(optimization):
    results = []
    for fn in (_per_tuple, _batched):
        cluster, dfi = build(4)
        dfi.init_shuffle_flow(
            "f", [Endpoint(0, 0)], [Endpoint(n, 0) for n in (1, 2, 3)],
            SCHEMA, shuffle_key="key", optimization=optimization)
        results.append(run_flow(cluster, dfi, "f", fn))
    per_tuple, batched = results
    # Same tuples on the same targets, in the same per-channel order.
    assert batched == per_tuple
    assert sum(len(v) for v in batched.values()) == len(TUPLES)


def test_push_batch_single_channel_preserves_order():
    cluster, dfi = build(2)
    dfi.init_shuffle_flow("f", [Endpoint(0, 0)], [Endpoint(1, 0)], SCHEMA,
                          shuffle_key="key")
    received = run_flow(cluster, dfi, "f", _batched)
    assert received[0] == TUPLES


def test_push_batch_accepts_iterators_and_empty_batches():
    cluster, dfi = build(2)
    dfi.init_shuffle_flow("f", [Endpoint(0, 0)], [Endpoint(1, 0)], SCHEMA,
                          shuffle_key="key")

    def source_fn(source, _index):
        yield from source.push_batch([])
        yield from source.push_batch(iter(TUPLES[:50]))

    received = run_flow(cluster, dfi, "f", source_fn)
    assert received[0] == TUPLES[:50]


def test_push_batch_with_explicit_target_bypasses_router():
    cluster, dfi = build(3)
    dfi.init_shuffle_flow("f", [Endpoint(0, 0)],
                          [Endpoint(1, 0), Endpoint(2, 0)], SCHEMA,
                          shuffle_key="key")

    def source_fn(source, _index):
        yield from source.push_batch(TUPLES[:40], target=1)

    received = run_flow(cluster, dfi, "f", source_fn)
    assert received[0] == []
    assert received[1] == TUPLES[:40]


# -- push_bytes ----------------------------------------------------------

def test_push_bytes_delivers_packed_tuples():
    cluster, dfi = build(3)
    dfi.init_shuffle_flow("f", [Endpoint(0, 0)],
                          [Endpoint(1, 0), Endpoint(2, 0)], SCHEMA,
                          shuffle_key="key")
    blob = b"".join(SCHEMA.pack(values) for values in TUPLES[:300])

    def source_fn(source, _index):
        yield from source.push_bytes(blob[:len(blob) // 2], target=0)
        yield from source.push_bytes(
            memoryview(blob)[len(blob) // 2:], target=1)

    received = run_flow(cluster, dfi, "f", source_fn)
    assert received[0] == TUPLES[:150]
    assert received[1] == TUPLES[150:300]


def test_push_bytes_rejects_partial_tuples():
    cluster, dfi = build(2)
    dfi.init_shuffle_flow("f", [Endpoint(0, 0)], [Endpoint(1, 0)], SCHEMA,
                          shuffle_key="key")

    def source_fn(source, _index):
        with pytest.raises(FlowError):
            yield from source.push_bytes(b"x" * (SCHEMA.tuple_size + 1))
        yield from source.push_bytes(b"")  # empty is a no-op

    run_flow(cluster, dfi, "f", source_fn)


def test_push_bytes_requires_target_with_multiple_channels():
    cluster, dfi = build(3)
    dfi.init_shuffle_flow("f", [Endpoint(0, 0)],
                          [Endpoint(1, 0), Endpoint(2, 0)], SCHEMA,
                          shuffle_key="key")

    def source_fn(source, _index):
        with pytest.raises(FlowError):
            yield from source.push_bytes(b"\0" * SCHEMA.tuple_size)

    run_flow(cluster, dfi, "f", source_fn)


# -- determinism ---------------------------------------------------------

def test_batched_runs_are_deterministic():
    outcomes = []
    for _ in range(2):
        cluster, dfi = build(4, seed=7)
        dfi.init_shuffle_flow(
            "f", [Endpoint(0, 0)], [Endpoint(n, 0) for n in (1, 2, 3)],
            SCHEMA, shuffle_key="key")
        received = run_flow(cluster, dfi, "f", _batched)
        outcomes.append((cluster.env.now, received))
    assert outcomes[0] == outcomes[1]


# -- route_many consistency ----------------------------------------------

@pytest.mark.parametrize("target_count", [3, 8])
def test_route_many_matches_route(target_count):
    router = key_hash_router(SCHEMA, "key")
    tuples = ([(i * 2654435761 % 2 ** 61, i) for i in range(500)]
              + [(f"str-{i}", i) for i in range(50)])  # TypeError fallback
    groups = router.route_many(tuples, target_count)
    expected = [[] for _ in range(target_count)]
    for values in tuples:
        expected[router(values, target_count)].append(values)
    assert groups == expected


@pytest.mark.parametrize("target_count", [3, 4])
def test_radix_route_many_matches_route(target_count):
    router = radix_router(SCHEMA, "key", bits=6, shift=2)
    tuples = [(i * 7919, i) for i in range(300)]
    groups = router.route_many(tuples, target_count)
    expected = [[] for _ in range(target_count)]
    for values in tuples:
        expected[router(values, target_count)].append(values)
    assert groups == expected
