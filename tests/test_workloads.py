"""Tests for YCSB and relation generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.common.rand import ZipfGenerator
from repro.workloads import (
    YcsbConfig,
    YcsbWorkload,
    generate_relation,
    partition_chunks,
    zipf_relation,
)
from repro.workloads.ycsb import YcsbOperation


# -- YCSB --------------------------------------------------------------------

def test_ycsb_read_proportion():
    workload = YcsbWorkload(YcsbConfig(read_proportion=0.95), seed=1)
    requests = list(workload.requests(4000))
    reads = sum(1 for r in requests if r.op is YcsbOperation.READ)
    assert 0.92 < reads / 4000 < 0.98


def test_ycsb_keys_in_range():
    config = YcsbConfig(record_count=100)
    workload = YcsbWorkload(config, seed=2)
    for request in workload.requests(1000):
        assert 0 <= request.key < 100


def test_ycsb_zipfian_skew():
    """Zipfian: the most popular key dominates a uniform draw."""
    config = YcsbConfig(record_count=1000, distribution="zipfian")
    workload = YcsbWorkload(config, seed=3)
    counts = {}
    for request in workload.requests(20_000):
        counts[request.key] = counts.get(request.key, 0) + 1
    top = max(counts.values())
    assert top > 20_000 / 1000 * 10  # far above the uniform expectation


def test_ycsb_uniform_distribution():
    config = YcsbConfig(record_count=50, distribution="uniform")
    workload = YcsbWorkload(config, seed=4)
    counts = [0] * 50
    for request in workload.requests(10_000):
        counts[request.key] += 1
    assert min(counts) > 100  # every key drawn a reasonable number of times


def test_ycsb_update_values_sized():
    config = YcsbConfig(read_proportion=0.0, value_size=56)
    workload = YcsbWorkload(config, seed=5)
    request = workload.next_request()
    assert request.op is YcsbOperation.UPDATE
    assert len(request.value) == 56


def test_ycsb_deterministic_per_seed():
    a = [r.key for r in YcsbWorkload(YcsbConfig(), seed=7).requests(100)]
    b = [r.key for r in YcsbWorkload(YcsbConfig(), seed=7).requests(100)]
    c = [r.key for r in YcsbWorkload(YcsbConfig(), seed=8).requests(100)]
    assert a == b
    assert a != c


def test_ycsb_config_validation():
    with pytest.raises(ConfigurationError):
        YcsbConfig(record_count=0)
    with pytest.raises(ConfigurationError):
        YcsbConfig(read_proportion=1.5)
    with pytest.raises(ConfigurationError):
        YcsbConfig(distribution="pareto")


def test_zipf_generator_bounds():
    zipf = ZipfGenerator(100, theta=0.99)
    for _ in range(1000):
        assert 0 <= zipf.next() < 101


# -- relations -----------------------------------------------------------------

def test_generate_unique_relation_keys_are_permutation():
    relation = generate_relation(1000, unique=True, seed=1)
    assert sorted(relation[:, 0].tolist()) == list(range(1000))


def test_generate_fk_relation_within_range():
    relation = generate_relation(5000, key_range=100, seed=2)
    assert relation[:, 0].max() < 100
    assert relation.shape == (5000, 2)


def test_generate_relation_validation():
    with pytest.raises(ConfigurationError):
        generate_relation(0, unique=True)
    with pytest.raises(ConfigurationError):
        generate_relation(10)  # non-unique without key_range


def test_zipf_relation_skew():
    relation = zipf_relation(20_000, key_range=1000, theta=1.5, seed=3)
    values, counts = np.unique(relation[:, 0], return_counts=True)
    assert counts.max() > 20_000 / 1000 * 5


def test_partition_chunks_cover_everything():
    relation = generate_relation(1003, unique=True, seed=4)
    chunks = partition_chunks(relation, 7)
    assert len(chunks) == 7
    assert sum(len(chunk) for chunk in chunks) == 1003
    reassembled = np.concatenate(chunks)
    assert np.array_equal(reassembled, relation)


def test_partition_chunks_validation():
    relation = generate_relation(10, unique=True)
    with pytest.raises(ConfigurationError):
        partition_chunks(relation, 0)


@settings(max_examples=20)
@given(st.integers(1, 500), st.integers(1, 16))
def test_partition_chunks_property(size, parts):
    relation = generate_relation(size, unique=True, seed=0)
    chunks = partition_chunks(relation, parts)
    assert sum(len(chunk) for chunk in chunks) == size
