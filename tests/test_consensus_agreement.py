"""Replica-state agreement tests for the consensus implementations.

Beyond the performance shapes of Fig. 15, replicated state machines must
*agree*: after a run, the leader's and followers' KV stores must reflect
the same committed history, and NOPaxos' global order must be identical
on every replica — also under message loss with gap agreement.
"""

from repro.apps.consensus import messages
from repro.apps.consensus.driver import ConsensusSetup, LatencyTracker, LoadGenerator
from repro.apps.consensus.kvstore import APPLY_COST_NS, KvStore
from repro.common import HardwareProfile
from repro.core import (
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    GapNotification,
    Optimization,
    Ordering,
)
from repro.simnet import Cluster


def run_nopaxos_with_logs(loss=0.0, requests=300, seed=1):
    """A compact NOPaxos normal-operation run that records each replica's
    applied operation log (key sequence) for agreement checking."""
    profile = HardwareProfile(multicast_loss_probability=loss)
    cluster = Cluster(node_count=6, profile=profile, seed=seed)
    dfi = DfiRuntime(cluster)
    replicas = [0, 1, 2]
    clients = [Endpoint(4, 0), Endpoint(5, 0)]
    dfi.init_replicate_flow(
        "oum", clients, [Endpoint(r, 0) for r in replicas],
        messages.REQUEST_SCHEMA, optimization=Optimization.LATENCY,
        ordering=Ordering.GLOBAL,
        options=FlowOptions(multicast=True, gap_notify=True,
                            retransmit_timeout=15_000))
    applied = {r: [] for r in range(len(replicas))}
    stores = [KvStore() for _ in replicas]
    # Simplified gap resolution for this test: replicas deterministically
    # NO-OP a timed-out slot (all replicas time out on the same missing
    # sequence number, so agreement is preserved).
    skipped = {r: set() for r in range(len(replicas))}

    def replica(index):
        target = yield from dfi.open_target("oum", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            if isinstance(item, GapNotification):
                skipped[index].add(item.missing_seq)
                target.skip_gap(item.missing_seq)
                continue
            reqid, _client, op, key, value = item
            stores[index].apply(op, key, value)
            applied[index].append(reqid)  # reqids are unique

    def client(index):
        source = yield from dfi.open_source("oum", index)
        for i in range(requests // 2):
            yield from source.push(
                (messages.make_reqid(index, i), index,
                 messages.OP_UPDATE, i % 17,
                 bytes([index]) * messages.VALUE_BYTES))
        yield from source.close()

    for r in range(len(replicas)):
        cluster.env.process(replica(r))
    for c in range(2):
        cluster.env.process(client(c))
    cluster.run()
    return applied, stores, skipped


def test_nopaxos_replicas_apply_identical_order_lossless():
    applied, stores, skipped = run_nopaxos_with_logs(loss=0.0)
    assert applied[0] == applied[1] == applied[2]
    assert len(applied[0]) == 300
    assert not any(skipped.values())
    assert stores[0]._data == stores[1]._data == stores[2]._data


def test_nopaxos_replicas_agree_under_loss_with_skips():
    """With loss, each replica's applied log may skip NO-OP'd slots, but
    the applied sequences remain consistent prefixes of the global order:
    each replica's log is the global order minus its skipped slots, and
    slots applied by all replicas appear in the same relative order."""
    applied, _stores, skipped = run_nopaxos_with_logs(loss=0.05, seed=7)
    # Each replica applies the global order minus its own skipped slots,
    # so requests applied by *all* replicas must appear in the same
    # relative order everywhere (reqids are unique, so this is exact).
    logs = list(applied.values())
    common = set(logs[0]) & set(logs[1]) & set(logs[2])

    def filtered(log):
        return [reqid for reqid in log if reqid in common]

    assert filtered(logs[0]) == filtered(logs[1]) == filtered(logs[2])
    assert sum(len(s) for s in skipped.values()) > 0  # loss was exercised


def test_multipaxos_leader_store_reflects_all_updates():
    """End-to-end Multi-Paxos: every committed update is in the store."""
    from repro.apps.consensus.multipaxos import run_multipaxos
    from repro.workloads.ycsb import YcsbConfig

    # warmup=0 so ConsensusResult.completed (measured-window only)
    # covers every issued request.
    setup = ConsensusSetup(offered_rate=120_000, duration=1_500_000,
                           warmup=0.000001,
                           ycsb=YcsbConfig(read_proportion=0.0,
                                           record_count=64))
    result = run_multipaxos(Cluster(node_count=8), setup)
    assert result.completed == result.issued  # every update answered


def test_dare_read_your_writes():
    """DARE clients are closed-loop, so a client's read after its own
    update must observe it (the leader serializes)."""
    from repro.apps.consensus.dare import run_dare
    from repro.workloads.ycsb import YcsbConfig

    setup = ConsensusSetup(offered_rate=80_000, duration=1_500_000,
                           warmup=0.000001,
                           ycsb=YcsbConfig(read_proportion=0.5,
                                           record_count=16))
    result = run_dare(Cluster(node_count=8), setup)
    assert result.completed == result.issued
