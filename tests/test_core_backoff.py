"""Deterministic backoff behaviour of the low-level ring writers.

Both writers spin in a seeded random-backoff loop when the remote ring
has no free slot (``FooterRingWriter._ensure_writable``) or no credit
(``CreditRingWriter._acquire_credit``). These tests drive each writer
into that loop against a deliberately-full ring and assert the event
trace is bit-identical across two same-seed runs — the property the
figure benches (and the wall-clock fast paths) rely on.
"""

from repro.core.registry import RingHandle
from repro.core.segment import FLAG_CONSUMABLE, FOOTER_SIZE, pack_footer
from repro.core.writers import CreditRingWriter, FooterRingWriter
from repro.rdma.nic import get_nic
from repro.simnet import Cluster

SEGMENTS = 4
SEGMENT_SIZE = 256
SLOT = SEGMENT_SIZE + FOOTER_SIZE


def _run_footer_backoff(seed):
    cluster = Cluster(node_count=2, seed=seed)
    env = cluster.env
    region = get_nic(cluster.node(1)).register_memory(SEGMENTS * SLOT)
    # Every slot still marked consumable: the remote ring is full, so the
    # first write must poll-and-back-off until the consumer frees slots.
    for i in range(SEGMENTS):
        region.write(i * SLOT + SEGMENT_SIZE,
                     pack_footer(SEGMENT_SIZE, FLAG_CONSUMABLE, seq=1))
    handle = RingHandle(node_id=1, rkey=region.rkey,
                        segment_count=SEGMENTS, segment_size=SEGMENT_SIZE)
    writer = FooterRingWriter(cluster.node(0), handle, tag=("t",))
    trace = []

    def writer_thread():
        payload = b"\xab" * SEGMENT_SIZE
        for seq in range(SEGMENTS + 2):
            yield from writer.write_segment(payload, FLAG_CONSUMABLE, seq)
            trace.append((seq, env.now))

    def consumer_thread():
        # Free one slot every 2 µs (ring order, wrapping) — late enough
        # that the writer's backoff loop spins several times per slot.
        for i in range(SEGMENTS + 2):
            yield env.timeout(2000.0)
            region.write((i % SEGMENTS) * SLOT + SEGMENT_SIZE,
                         pack_footer(0, 0))

    env.process(writer_thread())
    env.process(consumer_thread())
    cluster.run()
    assert len(trace) == SEGMENTS + 2
    return trace


def _run_credit_backoff(seed):
    cluster = Cluster(node_count=2, seed=seed)
    env = cluster.env
    nic = get_nic(cluster.node(1))
    ring_region = nic.register_memory(SEGMENTS * SLOT)
    credit_region = nic.register_memory(8)
    handle = RingHandle(node_id=1, rkey=ring_region.rkey,
                        segment_count=SEGMENTS, segment_size=SEGMENT_SIZE,
                        credit_rkey=credit_region.rkey, credit_offset=0)
    writer = CreditRingWriter(cluster.node(0), handle, tag=("c",),
                              credit_threshold=1)
    trace = []

    def writer_thread():
        payload = b"\xcd" * SEGMENT_SIZE
        for seq in range(2 * SEGMENTS):
            yield from writer.write_segment(payload, FLAG_CONSUMABLE, seq)
            trace.append((seq, env.now))

    def consumer_thread():
        # Bump the consumed counter one segment every 3 µs: the writer
        # exhausts its initial credits instantly, then spins in
        # _acquire_credit (async counter read + random backoff).
        for consumed in range(1, 2 * SEGMENTS + 1):
            yield env.timeout(3000.0)
            credit_region.write_u64(0, consumed)

    env.process(writer_thread())
    env.process(consumer_thread())
    cluster.run()
    assert len(trace) == 2 * SEGMENTS
    return trace


def test_footer_writer_backoff_trace_is_deterministic():
    first = _run_footer_backoff(seed=5)
    second = _run_footer_backoff(seed=5)
    assert first == second
    # The ring really was full: nothing completed before the consumer
    # freed the first slot at t=2000.
    assert first[0][1] > 2000.0


def test_footer_writer_backoff_depends_on_seed():
    assert _run_footer_backoff(seed=1) != _run_footer_backoff(seed=2)


def test_credit_writer_backoff_trace_is_deterministic():
    first = _run_credit_backoff(seed=5)
    second = _run_credit_backoff(seed=5)
    assert first == second
    # The first ring's worth of writes needs no credit wait; the next
    # write must stall until the consumer advanced the counter.
    assert first[SEGMENTS][1] > 3000.0


def test_credit_writer_backoff_depends_on_seed():
    assert _run_credit_backoff(seed=1) != _run_credit_backoff(seed=2)
