"""Deterministic backoff behaviour of the low-level ring writers.

Both writers spin in a seeded random-backoff loop when the remote ring
has no free slot (``FooterRingWriter._ensure_writable``) or no credit
(``CreditRingWriter._acquire_credit``). These tests drive each writer
into that loop against a deliberately-full ring and assert the event
trace is bit-identical across two same-seed runs — the property the
figure benches (and the wall-clock fast paths) rely on.
"""

import pytest

from repro.common.errors import FlowTimeoutError
from repro.common.rand import derive_rng
from repro.core.backoff import FULL_RING_BACKOFF_BASE, full_ring_backoff
from repro.core.registry import RingHandle
from repro.core.segment import FLAG_CONSUMABLE, FOOTER_SIZE, pack_footer
from repro.core.writers import CreditRingWriter, FooterRingWriter
from repro.rdma.nic import get_nic
from repro.simnet import Cluster

SEGMENTS = 4
SEGMENT_SIZE = 256
SLOT = SEGMENT_SIZE + FOOTER_SIZE


def _run_footer_backoff(seed):
    cluster = Cluster(node_count=2, seed=seed)
    env = cluster.env
    region = get_nic(cluster.node(1)).register_memory(SEGMENTS * SLOT)
    # Every slot still marked consumable: the remote ring is full, so the
    # first write must poll-and-back-off until the consumer frees slots.
    for i in range(SEGMENTS):
        region.write(i * SLOT + SEGMENT_SIZE,
                     pack_footer(SEGMENT_SIZE, FLAG_CONSUMABLE, seq=1))
    handle = RingHandle(node_id=1, rkey=region.rkey,
                        segment_count=SEGMENTS, segment_size=SEGMENT_SIZE)
    writer = FooterRingWriter(cluster.node(0), handle, tag=("t",))
    trace = []

    def writer_thread():
        payload = b"\xab" * SEGMENT_SIZE
        for seq in range(SEGMENTS + 2):
            yield from writer.write_segment(payload, FLAG_CONSUMABLE, seq)
            trace.append((seq, env.now))

    def consumer_thread():
        # Free one slot every 2 µs (ring order, wrapping) — late enough
        # that the writer's backoff loop spins several times per slot.
        for i in range(SEGMENTS + 2):
            yield env.timeout(2000.0)
            region.write((i % SEGMENTS) * SLOT + SEGMENT_SIZE,
                         pack_footer(0, 0))

    env.process(writer_thread())
    env.process(consumer_thread())
    cluster.run()
    assert len(trace) == SEGMENTS + 2
    return trace


def _run_credit_backoff(seed):
    cluster = Cluster(node_count=2, seed=seed)
    env = cluster.env
    nic = get_nic(cluster.node(1))
    ring_region = nic.register_memory(SEGMENTS * SLOT)
    credit_region = nic.register_memory(8)
    handle = RingHandle(node_id=1, rkey=ring_region.rkey,
                        segment_count=SEGMENTS, segment_size=SEGMENT_SIZE,
                        credit_rkey=credit_region.rkey, credit_offset=0)
    writer = CreditRingWriter(cluster.node(0), handle, tag=("c",),
                              credit_threshold=1)
    trace = []

    def writer_thread():
        payload = b"\xcd" * SEGMENT_SIZE
        for seq in range(2 * SEGMENTS):
            yield from writer.write_segment(payload, FLAG_CONSUMABLE, seq)
            trace.append((seq, env.now))

    def consumer_thread():
        # Bump the consumed counter one segment every 3 µs: the writer
        # exhausts its initial credits instantly, then spins in
        # _acquire_credit (async counter read + random backoff).
        for consumed in range(1, 2 * SEGMENTS + 1):
            yield env.timeout(3000.0)
            credit_region.write_u64(0, consumed)

    env.process(writer_thread())
    env.process(consumer_thread())
    cluster.run()
    assert len(trace) == 2 * SEGMENTS
    return trace


def test_footer_writer_backoff_trace_is_deterministic():
    first = _run_footer_backoff(seed=5)
    second = _run_footer_backoff(seed=5)
    assert first == second
    # The ring really was full: nothing completed before the consumer
    # freed the first slot at t=2000.
    assert first[0][1] > 2000.0


def test_footer_writer_backoff_depends_on_seed():
    assert _run_footer_backoff(seed=1) != _run_footer_backoff(seed=2)


def test_credit_writer_backoff_trace_is_deterministic():
    first = _run_credit_backoff(seed=5)
    second = _run_credit_backoff(seed=5)
    assert first == second
    # The first ring's worth of writes needs no credit wait; the next
    # write must stall until the consumer advanced the counter.
    assert first[SEGMENTS][1] > 3000.0


def test_credit_writer_backoff_depends_on_seed():
    assert _run_credit_backoff(seed=1) != _run_credit_backoff(seed=2)


# -- exponential backoff policy (repro.core.backoff) --------------------------

def test_full_ring_backoff_is_exponential_with_bounded_jitter():
    rng = derive_rng(0, "test-backoff")
    for attempt in range(12):
        base = FULL_RING_BACKOFF_BASE * (1 << min(attempt, 6))
        delays = [full_ring_backoff(rng, attempt) for _ in range(50)]
        # Jitter multiplies the exponential base by [1, 2).
        assert all(base <= d < 2 * base for d in delays)
    # The exponential caps at 2**6: attempts 6 and 60 share a base.
    capped = FULL_RING_BACKOFF_BASE * (1 << 6)
    assert capped <= full_ring_backoff(rng, 60) < 2 * capped


def test_backoff_schedule_is_identical_across_identical_runs():
    """The whole jittered schedule — not just its statistics — replays
    bit-identically from the same per-node stream."""
    first = [full_ring_backoff(derive_rng(7, "node-backoff", 3), a)
             for a in range(20)]
    second = [full_ring_backoff(derive_rng(7, "node-backoff", 3), a)
              for a in range(20)]
    assert first == second
    # Different node id => different stream.
    other = [full_ring_backoff(derive_rng(7, "node-backoff", 4), a)
             for a in range(20)]
    assert first != other


# -- retry budget -------------------------------------------------------------

def _full_footer_ring(cluster):
    region = get_nic(cluster.node(1)).register_memory(SEGMENTS * SLOT)
    for i in range(SEGMENTS):
        region.write(i * SLOT + SEGMENT_SIZE,
                     pack_footer(SEGMENT_SIZE, FLAG_CONSUMABLE, seq=1))
    return RingHandle(node_id=1, rkey=region.rkey,
                      segment_count=SEGMENTS, segment_size=SEGMENT_SIZE)


def test_footer_writer_retry_budget_raises_flow_timeout():
    cluster = Cluster(node_count=2)
    writer = FooterRingWriter(cluster.node(0), _full_footer_ring(cluster),
                              tag=("t",), max_retries=5)
    errors = []

    def writer_thread():
        try:
            yield from writer.write_segment(b"\xab" * SEGMENT_SIZE,
                                            FLAG_CONSUMABLE, 0)
        except FlowTimeoutError as exc:
            errors.append((exc, cluster.now))

    cluster.env.process(writer_thread())
    cluster.run()
    assert len(errors) == 1
    exc, at = errors[0]
    assert "5 backoff rounds" in str(exc)
    # The budget bounds the stall: five capped rounds at most.
    assert at < 5 * 2 * 400.0 * (1 << 6) + 100_000.0


def test_credit_writer_retry_budget_raises_flow_timeout():
    cluster = Cluster(node_count=2)
    nic = get_nic(cluster.node(1))
    ring_region = nic.register_memory(SEGMENTS * SLOT)
    credit_region = nic.register_memory(8)  # stays 0: no credit, ever
    handle = RingHandle(node_id=1, rkey=ring_region.rkey,
                        segment_count=SEGMENTS, segment_size=SEGMENT_SIZE,
                        credit_rkey=credit_region.rkey, credit_offset=0)
    writer = CreditRingWriter(cluster.node(0), handle, tag=("c",),
                              credit_threshold=1, max_retries=4)
    errors = []

    def writer_thread():
        payload = b"\xcd" * SEGMENT_SIZE
        try:
            for seq in range(2 * SEGMENTS):
                yield from writer.write_segment(payload, FLAG_CONSUMABLE,
                                                seq)
        except FlowTimeoutError as exc:
            errors.append(exc)

    cluster.env.process(writer_thread())
    cluster.run()
    assert len(errors) == 1
    assert "4 backoff rounds" in str(errors[0])
    # The initial ring's worth of credits was spent before the stall.
    assert writer.segments_written == SEGMENTS


def test_retry_budget_unset_retries_forever():
    """Without a budget the writer keeps polling — backstop for the
    default (pre-fault-plane) behaviour."""
    cluster = Cluster(node_count=2)
    writer = FooterRingWriter(cluster.node(0), _full_footer_ring(cluster),
                              tag=("t",))
    done = []

    def writer_thread():
        yield from writer.write_segment(b"\xab" * SEGMENT_SIZE,
                                        FLAG_CONSUMABLE, 0)
        done.append(cluster.now)

    cluster.env.process(writer_thread())
    with pytest.raises(RuntimeError):
        # Bounded run: the writer is still politely backing off when the
        # horizon hits — no FlowTimeoutError, no completion.
        cluster.run(until=10_000_000.0)
        raise RuntimeError("horizon reached")
    assert not done
