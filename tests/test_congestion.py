"""Congestion-plane tests: virtual egress queues, deterministic ECN,
DCQCN rate control, and the incast/fairness/victim pathology scenarios.

Covers config and FlowOptions validation, the integer link accessors and
degrade re-pricing, the bounded virtual queue in isolation and under
32:1 incast (peak never exceeds capacity), the marking band, the DCQCN
cut/recovery state machine through real QPs, UD multicast pacing,
congestion-off neutrality (an unbounded plane is timeline-invisible),
seeded bit-reproducibility of every congested scenario, and the
failure-detection interplay: throttling must not surface spurious
``FlowTimeoutError``, while a genuinely dead peer still raises.
"""

import pytest

from repro.common.errors import (
    ConfigurationError,
    FlowPeerFailedError,
    FlowTimeoutError,
    SimulationError,
)
from repro.bench.flows import (
    _payload_schema,
    measure_fairness,
    measure_incast,
    measure_victim,
)
from repro.core import FLOW_END, DfiRuntime, Endpoint, FlowOptions, Schema
from repro.rdma import get_nic
from repro.simnet import (
    Cluster,
    CongestionConfig,
    FaultPlan,
    link_degrade,
    node_crash,
    stall_is_congestion,
)
from repro.simnet.congestion import _LinkQueue
from repro.simnet.link import Link

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))

#: Scenario config for the pathology tests (tuned in datacenter()).
DC = CongestionConfig.datacenter()


# -- config validation -------------------------------------------------------

def test_config_validation():
    with pytest.raises(ConfigurationError):
        CongestionConfig(queue_capacity=0)
    with pytest.raises(ConfigurationError):
        CongestionConfig(kmin=0)
    with pytest.raises(ConfigurationError):
        CongestionConfig(kmin=1024, kmax=512)
    with pytest.raises(ConfigurationError):
        CongestionConfig(pmax=0.0)
    with pytest.raises(ConfigurationError):
        CongestionConfig(min_rate_fraction=1.5)
    with pytest.raises(ConfigurationError):
        CongestionConfig(cnp_interval=-1.0)
    with pytest.raises(ConfigurationError):
        CongestionConfig(fast_recovery_rounds=0)
    with pytest.raises(ConfigurationError):
        CongestionConfig(recovery_jitter=1.0)
    with pytest.raises(ConfigurationError):
        CongestionConfig(ud_decrease=1.0)
    # The two canned configs must validate.
    CongestionConfig.unbounded()
    CongestionConfig.datacenter()


def test_flow_options_rejects_bad_congestion_value():
    with pytest.raises(ConfigurationError):
        FlowOptions(congestion="datacenter")
    FlowOptions(congestion=None)
    FlowOptions(congestion=DC)


def test_install_congestion_idempotent_and_conflict_checked():
    cluster = Cluster(node_count=2)
    assert cluster.congestion is None
    plane = cluster.install_congestion(DC)
    assert cluster.congestion is plane and plane.active
    assert cluster.install_congestion(CongestionConfig.datacenter()) is plane
    with pytest.raises(ConfigurationError):
        cluster.install_congestion(CongestionConfig.unbounded())
    with pytest.raises(ConfigurationError):
        cluster.install_congestion("nope")


def test_stall_is_congestion_false_without_plane():
    cluster = Cluster(node_count=2)
    assert not stall_is_congestion(cluster.node(0))
    assert not stall_is_congestion(cluster.node(0), cluster.node(1))


# -- link accessors and degrade re-pricing -----------------------------------

def test_link_integer_accessors():
    link = Link("l", bandwidth=12.5)
    assert link.busy_until_ns == 0
    assert link.backlog_bytes(0.0) == 0
    start, end = link.reserve(1000, 0.0)
    assert (start, end) == (0.0, 80.0)
    assert link.busy_until_ns == 80
    assert link.backlog_ns(0.0) == 80.0
    assert link.backlog_bytes(0.0) == 1000
    assert link.backlog_bytes(40.0) == 500
    assert link.backlog_bytes(80.0) == 0


def test_link_rescale_reprices_backlog():
    link = Link("l", bandwidth=12.5)
    link.reserve(1000, 0.0)               # busy until 80
    link.rescale(0.5, now=40.0)           # 500 bytes left at 6.25 B/ns
    assert link.bandwidth == 6.25
    assert link.busy_until == 40.0 + 500 / 6.25
    with pytest.raises(SimulationError):
        link.rescale(0.0, now=0.0)


def test_degrade_and_reserve_commute_at_same_timestamp():
    """The satellite regression: degrading a link and reserving on it at
    the same timestamp must land on one completion time regardless of
    order — rescale re-prices the queued bytes, reserve prices the new
    ones, and both see the same post-degrade bandwidth."""
    a = Link("a", bandwidth=12.5)
    b = Link("b", bandwidth=12.5)
    a.reserve(1000, 0.0)
    b.reserve(1000, 0.0)
    # Order 1: reserve the new message, then degrade.
    _, end_a = a.reserve(500, 0.0)
    a.rescale(0.5, now=0.0)
    # Order 2: degrade, then reserve.
    b.rescale(0.5, now=0.0)
    _, end_b = b.reserve(500, 0.0)
    assert a.busy_until == b.busy_until == end_b
    assert end_a != end_b  # the already-priced slot keeps its timestamps


def test_metrics_snapshot_reports_busy_until_and_congestion():
    cluster = Cluster(node_count=2)
    cluster.install_congestion(DC)
    snapshot = cluster.metrics_snapshot()
    for link_stats in snapshot["links"].values():
        assert isinstance(link_stats["busy_until_ns"], int)
    assert snapshot["congestion"]["packets_seen"] == 0
    bare = Cluster(node_count=2).metrics_snapshot()
    assert "congestion" not in bare


# -- virtual queue unit behaviour --------------------------------------------

def test_virtual_queue_admit_bounds_and_drains():
    q = _LinkQueue()
    bw, cap = 12.5, 1000.0
    # Fill to capacity: no hold-off while it fits.
    delay, level = q.admit(0.0, 600, cap, bw)
    assert (delay, level) == (0.0, 600.0)
    delay, level = q.admit(0.0, 400, cap, bw)
    assert (delay, level) == (0.0, 1000.0)
    # Overflow: held exactly until the queue drains room.
    delay, level = q.admit(0.0, 250, cap, bw)
    assert delay == 250 / bw
    assert level == cap
    assert q.peak == cap
    # Drains at line rate afterwards.
    now = q.last + 1000 / bw
    assert q.peek(now, bw) == 0.0
    assert q.peek(q.last, bw) == cap


def test_virtual_queue_peek_is_conservative_before_last():
    q = _LinkQueue()
    q.admit(100.0, 500, 1e9, 12.5)
    assert q.peek(50.0, 12.5) == 500.0  # stamped in this packet's future


# -- marking band (deterministic RED) ----------------------------------------

def _qp_pair(cluster, size=1 << 20):
    remote = get_nic(cluster.node(1)).register_memory(size)
    qp = get_nic(cluster.node(0)).create_qp(cluster.node(1))
    return qp, remote


def test_no_marks_below_kmin():
    cluster = Cluster(node_count=2)
    plane = cluster.install_congestion(DC)
    qp, remote = _qp_pair(cluster)

    def sender():
        for _ in range(4):
            wr = qp.post_write(b"x" * 1024, remote.rkey, 0)
            yield wr.done
            yield cluster.env.timeout(10_000.0)  # let the queue drain

    cluster.node(0).spawn(sender())
    cluster.run()
    assert plane.packets_seen == 4
    assert plane.ecn_marks == 0
    assert plane.pfc_stalls == 0


def test_everything_marks_above_kmax():
    """Back-to-back posts that pin the virtual queue past kmax must mark
    every packet admitted above the band (p = 1 ramp top)."""
    config = CongestionConfig(queue_capacity=64 * 1024, kmin=1024,
                              kmax=2048, pmax=1.0)
    cluster = Cluster(node_count=2)
    plane = cluster.install_congestion(config)
    qp, remote = _qp_pair(cluster)

    def sender():
        wrs = [qp.post_write(b"x" * 4096, remote.rkey, 0)
               for _ in range(8)]
        for wr in wrs:
            yield wr.done

    cluster.node(0).spawn(sender())
    cluster.run()
    assert plane.packets_seen == 8
    # Packet 1 sees only itself (4096 > kmax already) — with pmax=1 and
    # the error-diffusion accumulator every single packet marks.
    assert plane.ecn_marks == 8


def test_marking_ramp_is_deterministic_error_diffusion():
    """In the linear band the accumulated mark count equals the floor of
    the summed probabilities — no RNG involved."""
    config = CongestionConfig(queue_capacity=1 << 20, kmin=1000,
                              kmax=9000, pmax=0.5)
    cluster = Cluster(node_count=2)
    plane = cluster.install_congestion(config)
    qp, remote = _qp_pair(cluster)

    def sender():
        wrs = [qp.post_write(b"x" * 1000, remote.rkey, 0)
               for _ in range(9)]
        for wr in wrs:
            yield wr.done

    cluster.node(0).spawn(sender())
    cluster.run()
    # Occupancies seen: 1000..9000 in 1000-byte steps; probabilities
    # 0, .0625, .125, ..., .4375, .5 sum to 2.25 -> exactly 2 marks.
    assert plane.ecn_marks == 2


# -- DCQCN state machine -----------------------------------------------------

def test_cnp_cuts_rate_and_recovery_restores_line():
    cluster = Cluster(node_count=2)
    plane = cluster.install_congestion(DC)
    qp, remote = _qp_pair(cluster)
    state = plane.rc_state(qp)
    line = plane.line_rate
    assert state.rate == line

    state.on_cnp()
    # alpha ewma'd from 1.0, one multiplicative cut.
    after_first = state.rate
    assert after_first < line
    assert state.target == line
    assert state.cnps == 1 and state.cuts == 1

    # The CNP gate: a second CNP inside the interval only moves alpha.
    state.on_cnp()
    assert state.rate == after_first
    assert state.cnps == 2 and state.cuts == 1

    # Recovery timers must climb all the way back to line rate.
    cluster.run()
    assert state.rate == line
    assert state.alpha <= 1e-3


def test_rate_floor_guarantees_progress():
    config = CongestionConfig(min_rate_fraction=0.25)
    cluster = Cluster(node_count=2)
    plane = cluster.install_congestion(config)
    qp, _ = _qp_pair(cluster)
    state = plane.rc_state(qp)
    floor = 0.25 * plane.line_rate
    for _ in range(50):
        state.last_cut = -1e18  # defeat the CNP gate
        state.on_cnp()
    assert state.rate == floor


def test_throttled_admission_paces_wqes():
    cluster = Cluster(node_count=2)
    plane = cluster.install_congestion(DC)
    qp, _ = _qp_pair(cluster)
    state = plane.rc_state(qp)
    state.rate = plane.line_rate / 4.0
    first = state.admit(1000)
    second = state.admit(1000)
    assert first == 0.0
    # The second WQE waits for the first's paced slot: 4x wire time.
    assert second == pytest.approx(1000 / state.rate)


# -- congestion-off neutrality -----------------------------------------------

def test_unbounded_plane_is_timeline_invisible():
    """An installed plane whose thresholds never trip adds exactly zero
    delay: elapsed and per-sender finish times are bit-identical to a
    run without any plane (the local version of
    ``fingerprint.py --check-congestion-neutral``)."""
    bare = measure_incast(4, bytes_per_sender=32 << 10, seed=11)
    probed = measure_incast(
        4, bytes_per_sender=32 << 10, seed=11,
        options=FlowOptions(congestion=CongestionConfig.unbounded()))
    assert probed["elapsed_ns"] == bare["elapsed_ns"]
    assert probed["finish_ns"] == bare["finish_ns"]
    plane = probed["cluster"].congestion
    assert plane.ecn_marks == 0 and plane.pfc_stalls == 0
    assert plane.packets_seen > 0  # the plane did observe the traffic


# -- pathology scenarios -----------------------------------------------------

@pytest.mark.parametrize("senders", (8, 16, 32))
def test_incast_bounded_queue_and_reproducible(senders):
    options = FlowOptions(congestion=DC)
    first = measure_incast(senders, bytes_per_sender=64 << 10,
                           options=options, seed=3)
    second = measure_incast(senders, bytes_per_sender=64 << 10,
                            options=options, seed=3)
    assert first["elapsed_ns"] == second["elapsed_ns"]
    assert first["finish_ns"] == second["finish_ns"]
    stats = first["cluster"].congestion.stats()
    peak = stats["links"]["node0.down"]["peak_queue_bytes"]
    assert 0 < peak <= DC.queue_capacity
    # Completion-time inflation vs the unthrottled fabric stays bounded.
    bare = measure_incast(senders, bytes_per_sender=64 << 10, seed=3)
    assert first["elapsed_ns"] <= 3.0 * bare["elapsed_ns"]


def test_incast_32_to_1_marks_and_stalls():
    run = measure_incast(32, bytes_per_sender=64 << 10,
                         options=FlowOptions(congestion=DC), seed=3)
    stats = run["cluster"].congestion.stats()
    link = stats["links"]["node0.down"]
    assert stats["ecn_marks"] > 50
    assert stats["cnps_delivered"] > 0
    assert stats["pfc_stalls"] > 0
    assert link["mark_rate"] > 0.1
    assert any(r["cuts"] > 0 for r in stats["qp_rates"].values())


def test_fairness_jain_index():
    options = FlowOptions(congestion=DC)
    first = measure_fairness(4, options=options, seed=7)
    second = measure_fairness(4, options=options, seed=7)
    assert first["elapsed_ns"] == second["elapsed_ns"]
    assert first["jain_index"] >= 0.9
    # Fairness must not cost more than a bounded makespan inflation.
    bare = measure_fairness(4, seed=7)
    assert first["makespan_ns"] <= 3.0 * bare["makespan_ns"]


def test_victim_behind_elephant_bounded_inflation():
    bare = measure_victim(seed=5)
    throttled = measure_victim(options=FlowOptions(congestion=DC), seed=5)
    again = measure_victim(options=FlowOptions(congestion=DC), seed=5)
    assert throttled["victim_elapsed_ns"] == again["victim_elapsed_ns"]
    assert throttled["elephant_elapsed_ns"] == again["elephant_elapsed_ns"]
    # The elephant fan-in really congested the shared egress port.
    assert throttled["cluster"].congestion.ecn_marks > 0
    # Bounded inflation for both roles — the victim must not be starved
    # by the very rate control that bounds the queue it shares.
    assert (throttled["victim_elapsed_ns"]
            <= 2.0 * bare["victim_elapsed_ns"])
    assert (throttled["elephant_elapsed_ns"]
            <= 3.0 * bare["elephant_elapsed_ns"])


# -- congestion vs failure detection -----------------------------------------

def test_throttling_does_not_trip_peer_timeout():
    """A hard-throttled incast with a peer_timeout far below the
    throttled transfer time must still complete: the deadline checks ask
    ``stall_is_congestion`` and grant self-clearing grace."""
    options = FlowOptions(congestion=DC, peer_timeout=20_000.0)
    run = measure_incast(16, bytes_per_sender=64 << 10, options=options,
                         seed=3)
    assert run["elapsed_ns"] > 20_000.0  # deadline tighter than the run
    stats = run["cluster"].congestion.stats()
    assert stats["ecn_marks"] > 0


def test_dead_peer_still_raises_under_congestion():
    """Congestion grace must not mask real failures: with the plane
    active and marking, a crashed target is still surfaced as a flow
    error — deterministically, not as a hang."""
    def run_once():
        cluster = Cluster(node_count=3, seed=9)
        cluster.install_faults(
            FaultPlan([node_crash(2, at=30_000.0)]),
            detection_timeout=20_000.0)
        dfi = DfiRuntime(cluster)
        options = FlowOptions(
            segment_size=256, source_segments=4, target_segments=4,
            credit_threshold=2, peer_timeout=50_000.0,
            max_backoff_retries=16, congestion=DC)
        dfi.init_shuffle_flow("doomed", ["node1|0"], ["node2|0"], SCHEMA,
                              shuffle_key="key", options=options)
        outcome = {}

        def source_thread():
            try:
                source = yield from dfi.open_source("doomed", 0)
                for i in range(5000):
                    yield from source.push((i, 1))
                yield from source.close()
                outcome["source"] = "completed"
            except (FlowPeerFailedError, FlowTimeoutError) as exc:
                outcome["source"] = type(exc).__name__
                outcome["at"] = cluster.now

        def target_thread():
            target = yield from dfi.open_target("doomed", 0)
            while (yield from target.consume()) is not FLOW_END:
                pass  # killed by the crash injection

        source = cluster.node(1).spawn(source_thread())
        cluster.node(2).spawn(target_thread())
        cluster.run(until=4_000_000.0)
        assert not source.is_alive, "source hung past the horizon"
        return outcome

    first = run_once()
    second = run_once()
    assert first == second
    assert first["source"] in ("FlowPeerFailedError", "FlowTimeoutError")
    assert first["at"] < 4_000_000.0


def test_incast_under_link_degrade_completes():
    """The satellite invariant: ``link_degrade`` composing with bounded
    queues (re-priced backlog + recalibrated virtual-queue drain) must
    not hang an incast — it completes, still marking."""
    plan = FaultPlan([link_degrade(0, at=20_000.0, duration=200_000.0,
                                   factor=4.0)])
    options = FlowOptions(congestion=DC, peer_timeout=300_000.0)
    cluster = Cluster(node_count=9, seed=3)
    cluster.install_faults(plan, detection_timeout=60_000.0)
    dfi = DfiRuntime(cluster)
    schema = _payload_schema(64)
    dfi.init_shuffle_flow("incast",
                          [Endpoint(1 + n, 0) for n in range(8)],
                          [Endpoint(0, 0)], schema, shuffle_key="key",
                          options=options)
    pad = b"x" * 56
    done = {"consumed": 0, "ended": False}

    def source_thread(index):
        source = yield from dfi.open_source("incast", index)
        for start in range(0, 1024, 64):
            rows = [(start + i, pad) for i in range(64)]
            yield from source.push_batch(rows, target=0)
        yield from source.close()

    def target_thread():
        target = yield from dfi.open_target("incast", 0)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                done["ended"] = True
                return
            done["consumed"] += len(batch)

    for n in range(8):
        cluster.node(1 + n).spawn(source_thread(n))
    cluster.node(0).spawn(target_thread())
    cluster.run(until=8_000_000.0)
    assert done["ended"] and done["consumed"] == 8 * 1024
    assert cluster.congestion.ecn_marks > 0


# -- UD multicast pacing -----------------------------------------------------

def test_ud_multicast_mark_aware_pacing():
    from repro.rdma import UD_MTU, MulticastGroup

    config = CongestionConfig(queue_capacity=1 << 20, kmin=2048,
                              kmax=8192, cnp_interval=100.0)
    cluster = Cluster(node_count=4, seed=0)
    plane = cluster.install_congestion(config)
    group = MulticastGroup("grp")
    for node_id in range(1, 4):
        nic = get_nic(cluster.node(node_id))
        qp = nic.create_ud_qp()
        rx = nic.register_memory(UD_MTU * 64)
        for slot in range(64):
            qp.post_recv(rx, slot * UD_MTU, UD_MTU)
        group.join(qp)
    sender = get_nic(cluster.node(0)).create_ud_qp()

    def send_burst():
        wrs = [sender.post_send_multicast(group, b"m" * 1024)
               for _ in range(32)]
        for wr in wrs:
            yield wr.done

    cluster.node(0).spawn(send_burst())
    cluster.run()
    state = plane.ud_state(cluster.node(0))
    assert plane.ud_cuts > 0
    # Recovery steps the factor back toward line once the burst ends.
    assert state.factor == 1.0

    # Determinism: same seed, same cut count.
    cluster2 = Cluster(node_count=4, seed=0)
    plane2 = cluster2.install_congestion(config)
    group2 = MulticastGroup("grp")
    for node_id in range(1, 4):
        nic = get_nic(cluster2.node(node_id))
        qp = nic.create_ud_qp()
        rx = nic.register_memory(UD_MTU * 64)
        for slot in range(64):
            qp.post_recv(rx, slot * UD_MTU, UD_MTU)
        group2.join(qp)
    sender2 = get_nic(cluster2.node(0)).create_ud_qp()

    def send_burst2():
        wrs = [sender2.post_send_multicast(group2, b"m" * 1024)
               for _ in range(32)]
        for wr in wrs:
            yield wr.done

    cluster2.node(0).spawn(send_burst2())
    cluster2.run()
    assert plane2.ud_cuts == plane.ud_cuts
    assert cluster2.now == cluster.now


# -- observability -----------------------------------------------------------

def test_queue_depth_and_mark_histograms_recorded():
    cluster_holder = {}

    def run():
        run_ = measure_incast(8, bytes_per_sender=64 << 10,
                              options=FlowOptions(congestion=DC, trace=True),
                              seed=3)
        cluster_holder["cluster"] = run_["cluster"]
        return run_

    run()
    cluster = cluster_holder["cluster"]
    snapshot = cluster.metrics_snapshot()
    target_metrics = snapshot["nodes"][0]
    assert target_metrics["histograms"]["net.queue_depth"]["count"] > 0
    assert target_metrics["histograms"]["net.mark_occupancy"]["count"] > 0
    assert target_metrics["counters"]["net.ecn_marks"] > 0
    # Rate timelines land in the congestion trace ring.
    tracer = cluster.obs.tracers["congestion"]
    kinds = {event[1] for event in tracer.events()}
    assert "ECN_MARK" in kinds and "RATE_CHANGE" in kinds
