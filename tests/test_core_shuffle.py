"""Integration tests for shuffle flows (bandwidth and latency modes)."""

import pytest

from repro.common.errors import FlowClosedError, FlowError
from repro.core import (
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowDescriptor,
    FlowOptions,
    FlowType,
    Optimization,
    Schema,
)
from repro.core.shuffle import ShuffleSource, ShuffleTarget
from repro.simnet import Cluster

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))


def build(node_count=3, **descriptor_kwargs):
    cluster = Cluster(node_count=node_count)
    dfi = DfiRuntime(cluster)
    return cluster, dfi


def run_shuffle(cluster, dfi, name, n_tuples_per_source, push_kwargs=None):
    descriptor = dfi.registry.descriptor(name)
    received = {i: [] for i in range(descriptor.target_count)}

    def source_thread(index):
        source = yield from dfi.open_source(name, index)
        for i in range(n_tuples_per_source):
            yield from source.push((index * 10 ** 6 + i, i),
                                   **(push_kwargs or {}))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target(name, index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            received[index].append(item)

    for s in range(descriptor.source_count):
        cluster.env.process(source_thread(s))
    for t in range(descriptor.target_count):
        cluster.env.process(target_thread(t))
    cluster.run()
    return received


def test_one_to_one_delivers_everything_in_order():
    cluster, dfi = build(node_count=2)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key")
    received = run_shuffle(cluster, dfi, "f", 500)
    assert received[0] == [(i, i) for i in range(500)]


def test_n_to_m_partitions_by_key():
    cluster, dfi = build(node_count=4)
    dfi.init_shuffle_flow(
        "f", ["node0|0", "node1|0"], ["node2|0", "node3|0"], SCHEMA,
        shuffle_key="key")
    received = run_shuffle(cluster, dfi, "f", 400)
    all_tuples = received[0] + received[1]
    assert len(all_tuples) == 800
    assert len(received[0]) > 0 and len(received[1]) > 0
    # Key-partitioning: the same key never lands on two targets.
    keys0 = {k for k, _v in received[0]}
    keys1 = {k for k, _v in received[1]}
    assert keys0.isdisjoint(keys1)


def test_per_channel_fifo_order():
    """Tuples from one source to one target keep their push order."""
    cluster, dfi = build(node_count=3)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0", "node2|0"], SCHEMA,
                          shuffle_key="key")
    received = run_shuffle(cluster, dfi, "f", 1000)
    for rows in received.values():
        values = [v for _k, v in rows]
        assert values == sorted(values)


def test_latency_mode_roundtrip():
    cluster, dfi = build(node_count=2)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          optimization=Optimization.LATENCY)
    received = run_shuffle(cluster, dfi, "f", 300)
    assert received[0] == [(i, i) for i in range(300)]


def test_latency_mode_backpressure_small_ring():
    """A tiny ring with a slow consumer exercises the credit stall path."""
    cluster, dfi = build(node_count=2)
    dfi.init_shuffle_flow(
        "f", ["node0|0"], ["node1|0"], SCHEMA,
        optimization=Optimization.LATENCY,
        options=FlowOptions(target_segments=4, credit_threshold=2))
    out = []

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        for i in range(100):
            yield from source.push((i, i))
        yield from source.close()

    def slow_target(env):
        target = yield from dfi.open_target("f", 0)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            out.append(item)
            yield env.timeout(2_000)  # slow consumer

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(slow_target(cluster.env))
    cluster.run()
    assert out == [(i, i) for i in range(100)]


def test_bandwidth_mode_backpressure_small_ring():
    cluster, dfi = build(node_count=2)
    dfi.init_shuffle_flow(
        "f", ["node0|0"], ["node1|0"], SCHEMA,
        options=FlowOptions(segment_size=64, target_segments=2,
                            source_segments=2, credit_threshold=1))
    out = []

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        for i in range(200):
            yield from source.push((i, i))
        yield from source.close()

    def slow_target(env):
        target = yield from dfi.open_target("f", 0)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            out.append(item)
            yield env.timeout(1_000)

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(slow_target(cluster.env))
    cluster.run()
    assert out == [(i, i) for i in range(200)]


def test_direct_target_routing():
    cluster, dfi = build(node_count=3)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0", "node2|0"], SCHEMA)
    received = run_shuffle(cluster, dfi, "f", 100, push_kwargs={"target": 1})
    assert received[0] == []
    assert len(received[1]) == 100


def test_push_without_router_or_target_rejected():
    cluster, dfi = build(node_count=3)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0", "node2|0"], SCHEMA)
    failures = []

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        try:
            yield from source.push((1, 1))
        except FlowError as exc:
            failures.append(str(exc))
        yield from source.close()

    def target_thread(env, idx):
        target = yield from dfi.open_target("f", idx)
        while (yield from target.consume()) is not FLOW_END:
            pass

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env, 0))
    cluster.env.process(target_thread(cluster.env, 1))
    cluster.run()
    assert failures and "shuffle key" in failures[0]


def test_custom_routing_function():
    cluster, dfi = build(node_count=3)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0", "node2|0"], SCHEMA,
                          routing=lambda values, count: values[0] % count)
    received = run_shuffle(cluster, dfi, "f", 200)
    assert all(k % 2 == 0 for k, _v in received[0])
    assert all(k % 2 == 1 for k, _v in received[1])


def test_push_after_close_rejected():
    cluster, dfi = build(node_count=2)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key")
    errors = []

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        yield from source.close()
        try:
            yield from source.push((1, 1))
        except FlowClosedError:
            errors.append("rejected")

    def target_thread(env):
        target = yield from dfi.open_target("f", 0)
        while (yield from target.consume()) is not FLOW_END:
            pass

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    assert errors == ["rejected"]


def test_flow_end_requires_all_sources_closed():
    cluster, dfi = build(node_count=3)
    dfi.init_shuffle_flow("f", ["node0|0", "node1|0"], ["node2|0"], SCHEMA,
                          shuffle_key="key")
    events = []

    def fast_source(env):
        source = yield from dfi.open_source("f", 0)
        yield from source.push((1, 1))
        yield from source.close()
        events.append(("fast_closed", env.now))

    def slow_source(env):
        source = yield from dfi.open_source("f", 1)
        yield env.timeout(200_000)
        yield from source.push((2, 2))
        yield from source.close()
        events.append(("slow_closed", env.now))

    def target_thread(env):
        target = yield from dfi.open_target("f", 0)
        count = 0
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                events.append(("flow_end", env.now, count))
                return
            count += 1

    cluster.env.process(fast_source(cluster.env))
    cluster.env.process(slow_source(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    end = next(e for e in events if e[0] == "flow_end")
    slow = next(e for e in events if e[0] == "slow_closed")
    assert end[2] == 2  # both tuples arrived
    assert end[1] >= 200_000  # FLOW_END only after the slow source closed
    assert slow[1] >= 200_000


def test_multiple_tuples_per_call_push_many():
    cluster, dfi = build(node_count=2)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key")
    out = []

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        yield from source.push_many([(i, i) for i in range(50)])
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("f", 0)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            out.append(item)

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    assert out == [(i, i) for i in range(50)]


def test_consume_batch_returns_lists():
    cluster, dfi = build(node_count=2)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key")
    batches = []

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        for i in range(600):
            yield from source.push((i, i))
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("f", 0)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                return
            batches.append(batch)

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    flat = [item for batch in batches for item in batch]
    assert flat == [(i, i) for i in range(600)]
    assert max(len(batch) for batch in batches) > 1


def test_tuple_content_integrity_many_segments():
    """Push enough data to wrap both rings multiple times and check every
    byte survives (exercises the footer/DMA-ordering protocol)."""
    cluster, dfi = build(node_count=2)
    schema = Schema(("key", "uint64"), ("payload", 56))
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], schema,
                          shuffle_key="key",
                          options=FlowOptions(segment_size=256,
                                              target_segments=4,
                                              source_segments=2,
                                              credit_threshold=2))
    n = 2000
    out = []

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        for i in range(n):
            payload = bytes([i % 251]) * 56
            yield from source.push((i, payload))
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("f", 0)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            out.append(item)

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    assert len(out) == n
    for i, (key, payload) in enumerate(out):
        assert key == i
        assert payload == bytes([i % 251]) * 56


def test_open_validations():
    cluster, dfi = build(node_count=2)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key")

    def bad_source(env):
        yield from ShuffleSource.open(dfi.registry, "f", 5)

    proc = cluster.env.process(bad_source(cluster.env))
    with pytest.raises(FlowError, match="out of range"):
        cluster.run()
    with pytest.raises(FlowError, match="out of range"):
        ShuffleTarget.open(dfi.registry, "f", 9)


def test_segment_smaller_than_tuple_rejected():
    cluster, dfi = build(node_count=2)
    schema = Schema(("blob", 512),)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], schema,
                          shuffle_key=0,
                          options=FlowOptions(segment_size=128))
    with pytest.raises(FlowError, match="smaller than one tuple"):
        ShuffleTarget.open(dfi.registry, "f", 0)


def test_memory_accounting_matches_paper_defaults():
    """Default config: 32 segments x (8 KiB + 16 B footer) per ring."""
    cluster, dfi = build(node_count=2)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key")
    sizes = {}

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        sizes["source"] = source.memory_bytes
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("f", 0)
        sizes["target"] = target.memory_bytes
        while (yield from target.consume()) is not FLOW_END:
            pass

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    expected_ring = 32 * (8192 + 16)
    assert sizes["source"] == expected_ring
    assert sizes["target"] == expected_ring


def test_stats_counters():
    cluster, dfi = build(node_count=2)
    dfi.init_shuffle_flow("f", ["node0|0"], ["node1|0"], SCHEMA,
                          shuffle_key="key")
    stats = {}

    def source_thread(env):
        source = yield from dfi.open_source("f", 0)
        for i in range(123):
            yield from source.push((i, i))
        yield from source.close()
        stats["sent"] = source.tuples_sent

    def target_thread(env):
        target = yield from dfi.open_target("f", 0)
        while (yield from target.consume()) is not FLOW_END:
            pass
        stats["received"] = target.tuples_received

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    assert stats == {"sent": 123, "received": 123}
