"""Fig. 10b — multi-threaded point-to-point, 64 B tuples.

Paper shape: DFI scales with sender threads; MPI with
MPI_THREAD_MULTIPLE gets *slower* as threads contend on internal latches;
MPI with one process per worker scales better than threads but is beaten
by DFI.
"""

from repro.bench import Table
from repro.bench.mpi_compare import dfi_p2p_runtime, mpi_p2p_runtime

THREADS = (1, 2, 4, 8)
TUPLE_SIZE = 64
TABLE_BYTES = 4 << 20


def run_sweep():
    results = {}
    for threads in THREADS:
        results[("dfi", threads)] = dfi_p2p_runtime(
            TUPLE_SIZE, TABLE_BYTES, threads=threads)
        results[("mpi_threads", threads)] = mpi_p2p_runtime(
            TUPLE_SIZE, TABLE_BYTES, threads=threads, multiprocess=False)
        results[("mpi_procs", threads)] = mpi_p2p_runtime(
            TUPLE_SIZE, TABLE_BYTES, threads=threads, multiprocess=True)
    return results


def test_fig10b_p2p_multi_threaded(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig10b",
                  "Multi-threaded point-to-point, 64 B tuples, 4 MiB",
                  ["sender threads", "DFI bandwidth-opt",
                   "MPI multi-threaded", "MPI multi-process"])
    for threads in THREADS:
        table.add_row(threads,
                      f"{results[('dfi', threads)] / 1e6:9.2f} ms",
                      f"{results[('mpi_threads', threads)] / 1e6:9.2f} ms",
                      f"{results[('mpi_procs', threads)] / 1e6:9.2f} ms")
    table.note("paper: DFI scales with threads; MPI THREAD_MULTIPLE gets "
               "worse with threads (latch contention); multi-process MPI "
               "scales but stays behind DFI")
    report(table)
    # DFI gets faster with threads.
    assert results[("dfi", 4)] < results[("dfi", 1)]
    # MPI THREAD_MULTIPLE gets *slower* with threads.
    assert results[("mpi_threads", 8)] > results[("mpi_threads", 1)]
    # Multi-process MPI beats multi-threaded MPI at 8 workers.
    assert results[("mpi_procs", 8)] < results[("mpi_threads", 8)]
    # DFI beats both MPI variants at 8 workers.
    assert results[("dfi", 8)] < results[("mpi_procs", 8)]
