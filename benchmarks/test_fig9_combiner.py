"""Fig. 9 — combiner flow with SUM aggregation (8:1): aggregated sender
bandwidth.

Paper shape: with 2 or more sender threads per node the flow saturates the
target's in-going link (one link's worth of aggregate bandwidth).
"""

from repro.bench import Table, format_gib_s
from repro.bench.flows import measure_combiner_bandwidth
from repro.common.units import GIB, SECONDS, gbps_to_bytes_per_ns

TUPLE_SIZES = (64, 256, 1024)
SENDER_THREADS = (1, 2, 4)
LINK = gbps_to_bytes_per_ns(100.0)


def run_sweep():
    results = {}
    for tuple_size in TUPLE_SIZES:
        for threads in SENDER_THREADS:
            m = measure_combiner_bandwidth(tuple_size, threads,
                                           total_bytes=3 << 20)
            results[(tuple_size, threads)] = m.bytes_per_ns
    return results


def test_fig9_combiner(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig9",
                  "Combiner flow (SUM, 8:1) aggregated sender bandwidth",
                  ["tuple size", "1 thread", "2 threads", "4 threads"])
    for tuple_size in TUPLE_SIZES:
        table.add_row(f"{tuple_size} B",
                      *(format_gib_s(results[(tuple_size, t)])
                        for t in SENDER_THREADS))
    table.note(f"target in-going link: {LINK * SECONDS / GIB:.2f} GiB/s "
               "(the natural bottleneck; SHARP-style in-network "
               "aggregation is the paper's future work)")
    report(table)
    # Saturation at the target's in-link for >= 2 threads, larger tuples.
    assert results[(1024, 2)] > 0.8 * LINK
    assert results[(1024, 4)] > 0.8 * LINK
    # Never above the in-link: the combiner target has one port.
    for bandwidth in results.values():
        assert bandwidth < 1.05 * LINK
