"""Ablation — credit refresh threshold of latency-optimized flows
(paper Section 5.3): the remote credit counter is re-read once the local
estimate drops to the threshold.

Expected: a too-low threshold risks stalling (the refresh happens on the
critical path once credits hit zero); a generous threshold hides the
refresh round trip entirely. The default (8 of 32) is safely in the flat
region.
"""

from repro.bench import Table
from repro.bench.flows import measure_shuffle_bandwidth
from repro.core import FlowOptions, Optimization
from repro.common.units import GIB, SECONDS

THRESHOLDS = (1, 4, 8, 16)


def run_sweep():
    results = {}
    for threshold in THRESHOLDS:
        options = FlowOptions(target_segments=32,
                              credit_threshold=threshold)
        m = measure_shuffle_bandwidth(
            64, 1, target_nodes=1, total_bytes=256 << 10,
            options=options, optimization=Optimization.LATENCY)
        results[threshold] = m.bytes_per_ns
    return results


def test_ablation_credit_threshold(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("ablation_credit_threshold",
                  "Latency-flow throughput vs credit refresh threshold",
                  ["threshold (of 32)", "throughput"])
    for threshold in THRESHOLDS:
        mb_s = results[threshold] * SECONDS / GIB
        table.add_row(threshold, f"{mb_s:8.3f} GiB/s")
    table.note("refreshing early (higher threshold) hides the credit "
               "read round trip; threshold 1 risks hard stalls")
    report(table)
    assert results[8] >= results[1] * 0.95  # default at least as good
