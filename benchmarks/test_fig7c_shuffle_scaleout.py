"""Fig. 7c — scale-out: aggregated sender bandwidth of an N:N shuffle.

Paper shape: aggregate bandwidth grows linearly with the number of
servers — each added node contributes its link speed. (The paper runs 4
and 14 threads per server; we run 2 and 4 — the curves coincide once the
per-node link is saturated, which 4 threads already achieve.)
"""

from repro.bench import Table, format_gib_s
from repro.bench.flows import measure_scaleout_bandwidth
from repro.common.units import GIB, SECONDS, gbps_to_bytes_per_ns

SERVERS = (2, 4, 6, 8)
THREADS = (2, 4)
LINK = gbps_to_bytes_per_ns(100.0)


def run_sweep():
    results = {}
    for servers in SERVERS:
        for threads in THREADS:
            m = measure_scaleout_bandwidth(
                servers, threads, bytes_per_source=512 << 10)
            results[(servers, threads)] = m.bytes_per_ns
    return results


def test_fig7c_shuffle_scaleout(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig7c", "Aggregated sender bandwidth (N:N scale-out)",
                  ["servers", "2 threads/server", "4 threads/server",
                   "N x link"])
    for servers in SERVERS:
        table.add_row(servers,
                      *(format_gib_s(results[(servers, t)])
                        for t in THREADS),
                      f"{servers * LINK * SECONDS / GIB:8.2f} GiB/s")
    table.note("paper: linear scaling with the number of servers (Fig. 7c)")
    report(table)
    # Aggregate bandwidth grows with every added pair of servers. (A raw
    # 8-vs-2-server ratio is not meaningful: at 2 servers half the
    # traffic is node-local and never crosses the wire, inflating the
    # small-cluster aggregate.)
    for threads in THREADS:
        series = [results[(servers, threads)] for servers in SERVERS]
        assert all(later > earlier
                   for earlier, later in zip(series, series[1:]))
    # Wire-crossing traffic scales linearly: correct each aggregate by
    # its remote fraction (N-1)/N and compare 8 vs 4 servers.
    for threads in THREADS:
        wire8 = results[(8, threads)] * 7 / 8
        wire4 = results[(4, threads)] * 3 / 4
        assert wire8 > 1.5 * wire4
    # 4 threads/server comes close to the aggregate link limit.
    assert results[(8, 4)] > 0.7 * 8 * LINK
