"""Fig. 13 — distributed radix join, 8 nodes, 64 workers:
MPI radix join (Barthels et al.) vs. the DFI radix join.

Paper shape: DFI wins ~1.3x overall. Two reasons the phase breakdown
shows: the MPI join pays an extra histogram pass plus a synchronization
barrier, and its network partition phase cannot overlap with local
processing, while DFI streams.

Scaling: the paper joins 2.56 B x 2.56 B tuples; we join 1 M x 1 M with a
1 KiB segment size so that per-channel traffic still spans many segments
(the regime where streaming matters).
"""

from repro.apps.join import run_dfi_radix_join, run_mpi_radix_join
from repro.bench import Table
from repro.core import FlowOptions
from repro.simnet import Cluster
from repro.workloads import generate_relation

SIZE = 1_000_000


def run_pair():
    inner = generate_relation(SIZE, unique=True, seed=1)
    outer = generate_relation(SIZE, key_range=SIZE, seed=2)
    options = FlowOptions(segment_size=1024, source_segments=8,
                          target_segments=8, credit_threshold=4)
    dfi = run_dfi_radix_join(Cluster(node_count=8), inner, outer,
                             workers_per_node=8, options=options)
    mpi = run_mpi_radix_join(Cluster(node_count=8), inner, outer,
                             ranks_per_node=8)
    return dfi, mpi


def test_fig13_radix_join(benchmark, report):
    dfi, mpi = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = Table("fig13", "Distributed radix join, 8 nodes, 64 workers",
                  ["phase", "DFI radix join", "MPI radix join"])
    phase_names = ["histogram", "network_partition", "sync_barrier",
                   "local_partition", "build_probe"]
    for name in phase_names:
        table.add_row(name,
                      f"{dfi.phases.get(name, 0.0) / 1e6:9.3f} ms",
                      f"{mpi.phases.get(name, 0.0) / 1e6:9.3f} ms")
    table.add_row("total (makespan)",
                  f"{dfi.runtime / 1e6:9.3f} ms",
                  f"{mpi.runtime / 1e6:9.3f} ms")
    table.note(f"matches: DFI {dfi.matches}, MPI {mpi.matches} "
               f"(expected {SIZE})")
    table.note("paper: DFI ~1.3x faster — no histogram pass, no barrier, "
               "and streaming overlap of shuffle and local processing")
    report(table)
    assert dfi.matches == mpi.matches == SIZE
    assert dfi.runtime < mpi.runtime
    assert "histogram" not in dfi.phases  # DFI needs no histogram pass
    assert mpi.phases["histogram"] > 0
