"""Fig. 12 — batched collective shuffling (8:8) with one straggling node.

Paper shape: the bulk-synchronous MPI_Alltoall cannot start before the
straggler finished its scan, so its runtime grows by roughly the scan
slowdown *plus* the unoverlapped transfer; DFI streams tuples into the
flow during the scan, hiding the transfer behind the slow scan — the
straggler hurts it noticeably less.

Scaling: the paper uses T = 2 GiB and 8 GiB tables; we use 16 MiB and
64 MiB (the same 4x spread; both systems scale linearly in T).
"""

from repro.bench import Table
from repro.bench.mpi_compare import (
    dfi_shuffle_straggler_runtime,
    mpi_alltoall_batched_runtime,
)

TABLES = (16 << 20, 64 << 20)
SCALES = (1.0, 0.5)


def run_sweep():
    results = {}
    for table_bytes in TABLES:
        for scale in SCALES:
            results[("dfi", table_bytes, scale)] = (
                dfi_shuffle_straggler_runtime(table_bytes,
                                              straggler_scale=scale,
                                              segment_size=4096))
            results[("mpi", table_bytes, scale)] = (
                mpi_alltoall_batched_runtime(table_bytes,
                                             straggler_scale=scale))
    return results


def test_fig12_straggler(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig12",
                  "Batched collective shuffle (8:8) with a straggler",
                  ["table", "straggler", "DFI runtime", "MPI runtime",
                   "MPI/DFI"])
    for table_bytes in TABLES:
        for scale in SCALES:
            dfi_ns = results[("dfi", table_bytes, scale)]
            mpi_ns = results[("mpi", table_bytes, scale)]
            table.add_row(f"{table_bytes >> 20} MiB",
                          f"s={scale}",
                          f"{dfi_ns / 1e6:9.2f} ms",
                          f"{mpi_ns / 1e6:9.2f} ms",
                          f"{mpi_ns / dfi_ns:5.2f}x")
    table.note("paper (T=2 GiB): DFI 0.71s vs MPI 1.19s at s=1; straggler "
               "s=0.5 degrades MPI more than DFI (blocking collective)")
    report(table)
    for table_bytes in TABLES:
        base_dfi = results[("dfi", table_bytes, 1.0)]
        base_mpi = results[("mpi", table_bytes, 1.0)]
        slow_dfi = results[("dfi", table_bytes, 0.5)]
        slow_mpi = results[("mpi", table_bytes, 0.5)]
        assert base_mpi > base_dfi  # DFI overlaps scan and transfer
        assert slow_mpi > slow_dfi
        # The straggler's *absolute* penalty hits MPI at least as hard.
        assert (slow_mpi - base_mpi) >= (slow_dfi - base_dfi) * 0.95
