"""Fig. 15 — replicated KV store under YCSB-B (95/5), 5 replicas,
6 clients on 3 nodes: DARE vs. DFI Multi-Paxos vs. DFI NOPaxos.

Paper shape: both DFI implementations beat DARE in throughput and
latency. DARE saturates first (one outstanding request per client +
serialized write protocol); Multi-Paxos and NOPaxos have near-identical
latency below saturation (the sequencer round trip offsets NOPaxos'
fewer message delays); beyond the Multi-Paxos leader's capacity (~1M/s)
NOPaxos keeps stable latencies towards ~1.5M/s and beyond.
"""

from repro.apps.consensus import run_dare, run_multipaxos, run_nopaxos
from repro.apps.consensus.driver import ConsensusSetup
from repro.bench import Table
from repro.simnet import Cluster

RATES = (200_000, 500_000, 800_000, 1_100_000, 1_500_000)
DURATION = 3_000_000.0
WARMUP = 750_000.0


def run_sweep():
    results = {}
    for rate in RATES:
        setup = ConsensusSetup(offered_rate=rate, duration=DURATION,
                               warmup=WARMUP)
        results[("dare", rate)] = run_dare(Cluster(node_count=8), setup)
        results[("multipaxos", rate)] = run_multipaxos(
            Cluster(node_count=8), setup)
        results[("nopaxos", rate)] = run_nopaxos(Cluster(node_count=8),
                                                 setup)
    return results


def test_fig15_consensus(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig15",
                  "Consensus: latency vs. throughput (YCSB-B, 64 B)",
                  ["offered rate", "DARE med/p95", "Multi-Paxos med/p95",
                   "NOPaxos med/p95"])

    def cell(result):
        return (f"{result.median_latency / 1e3:7.1f}/"
                f"{result.p95_latency / 1e3:8.1f} us")

    for rate in RATES:
        table.add_row(f"{rate / 1e6:.1f} M/s",
                      cell(results[("dare", rate)]),
                      cell(results[("multipaxos", rate)]),
                      cell(results[("nopaxos", rate)]))
    table.note("paper: DFI implementations consistently beat DARE; "
               "NOPaxos stays stable up to ~1.5M/s (95th percentile)")
    report(table)
    low = RATES[0]
    # Below saturation: DARE is the slowest of the three.
    assert (results[("dare", low)].median_latency
            > results[("multipaxos", low)].median_latency)
    assert (results[("dare", low)].median_latency
            > results[("nopaxos", low)].median_latency)
    # Paxos and NOPaxos are near-identical below saturation.
    ratio = (results[("multipaxos", low)].median_latency
             / results[("nopaxos", low)].median_latency)
    assert 0.5 < ratio < 2.0
    # DARE saturates by ~800k: latencies explode.
    assert (results[("dare", 800_000)].median_latency
            > 20 * results[("dare", low)].median_latency)
    # NOPaxos is still stable at 1.5M/s while Multi-Paxos is saturated.
    assert (results[("nopaxos", 1_500_000)].p95_latency
            < 10 * results[("nopaxos", low)].p95_latency)
    assert (results[("multipaxos", 1_500_000)].p95_latency
            > results[("nopaxos", 1_500_000)].p95_latency * 5)
