"""Fig. 8c — replicate flow latency: time until *all* N targets answered,
naive one-sided vs. multicast.

Paper shape: naive replication is lowest for N=1 but grows with N (the
uplink serializes the copies); multicast grows much less from 1 to 8
targets and wins at N=8.
"""

from repro.bench import Table, format_us
from repro.bench.flows import measure_replicate_rtt

# 4000 B stands in for the paper's 4 KiB point: a UD datagram must fit
# payload + 16-byte footer within the 4096-byte MTU.
TUPLE_SIZES = (16, 64, 256, 1024, 4000)
TARGETS = (1, 8)


def median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def run_sweep():
    results = {}
    for size in TUPLE_SIZES:
        for targets in TARGETS:
            for multicast in (False, True):
                rtts = measure_replicate_rtt(size, targets, multicast,
                                             iterations=60)
                results[(size, targets, multicast)] = median(rtts)
    return results


def test_fig8c_replicate_latency(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig8c", "Replicate flow median latency (all targets)",
                  ["tuple size", "naive N=1", "naive N=8",
                   "multicast N=1", "multicast N=8"])
    for size in TUPLE_SIZES:
        table.add_row(f"{size} B",
                      format_us(results[(size, 1, False)]),
                      format_us(results[(size, 8, False)]),
                      format_us(results[(size, 1, True)]),
                      format_us(results[(size, 8, True)]))
    table.note("paper: naive is cheapest at N=1 but grows with N; "
               "multicast grows far less and wins at N=8")
    report(table)
    for size in TUPLE_SIZES:
        naive_growth = results[(size, 8, False)] - results[(size, 1, False)]
        mcast_growth = results[(size, 8, True)] - results[(size, 1, True)]
        assert mcast_growth < naive_growth
    largest = TUPLE_SIZES[-1]
    assert results[(largest, 8, True)] < results[(largest, 8, False)]
