"""Ablation — pipelined footer pre-read (paper Section 5.2): issuing the
RDMA read of segment n+1's footer together with the write of segment n
keeps the writability check off the critical path.

Expected: disabling the pre-read forces a synchronous footer read per
segment, cutting bandwidth noticeably for small segments.
"""

from repro.bench import Table, format_gib_s
from repro.bench.flows import measure_shuffle_bandwidth
from repro.core import FlowOptions


def run_pair():
    results = {}
    for pipelined in (True, False):
        options = FlowOptions(segment_size=2048,
                              pipelined_footer_read=pipelined)
        m = measure_shuffle_bandwidth(64, 1, total_bytes=2 << 20,
                                      options=options)
        results[pipelined] = m.bytes_per_ns
    return results


def test_ablation_footer_preread(benchmark, report):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = Table("ablation_footer_preread",
                  "Pipelined footer pre-read on/off (2 KiB segments, 1:8)",
                  ["pre-read", "sender bandwidth"])
    table.add_row("pipelined (paper)", format_gib_s(results[True]))
    table.add_row("synchronous", format_gib_s(results[False]))
    loss = (1 - results[False] / results[True]) * 100
    table.note(f"synchronous check costs {loss:.1f}% bandwidth")
    report(table)
    assert results[True] > results[False]
