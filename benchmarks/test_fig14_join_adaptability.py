"""Fig. 14 — join adaptability: with an inner table 1000x smaller than
the outer, swapping the inner's shuffle flow for a replicate flow turns
the radix join into a fragment-and-replicate join and cuts the runtime by
roughly another 20%.
"""

from repro.apps.join import (
    run_dfi_radix_join,
    run_dfi_replicate_join,
    run_mpi_radix_join,
)
from repro.bench import Table
from repro.core import FlowOptions
from repro.simnet import Cluster
from repro.workloads import generate_relation

OUTER_SIZE = 1_000_000
INNER_SIZE = OUTER_SIZE // 1000


def run_three():
    inner = generate_relation(INNER_SIZE, unique=True, seed=3)
    outer = generate_relation(OUTER_SIZE, key_range=INNER_SIZE, seed=4)
    options = FlowOptions(segment_size=1024, source_segments=8,
                          target_segments=8, credit_threshold=4)
    mpi = run_mpi_radix_join(Cluster(node_count=8), inner, outer,
                             ranks_per_node=8)
    dfi = run_dfi_radix_join(Cluster(node_count=8), inner, outer,
                             workers_per_node=8, options=options)
    fr = run_dfi_replicate_join(Cluster(node_count=8), inner, outer,
                                workers_per_node=8)
    return mpi, dfi, fr


def test_fig14_join_adaptability(benchmark, report):
    mpi, dfi, fr = benchmark.pedantic(run_three, rounds=1, iterations=1)
    table = Table("fig14",
                  "Joins with a small inner table (1:1000), 8 nodes",
                  ["implementation", "runtime", "matches"])
    table.add_row("MPI radix join", f"{mpi.runtime / 1e6:9.3f} ms",
                  mpi.matches)
    table.add_row("DFI radix join", f"{dfi.runtime / 1e6:9.3f} ms",
                  dfi.matches)
    table.add_row("DFI replicate join", f"{fr.runtime / 1e6:9.3f} ms",
                  fr.matches)
    improvement = (1 - fr.runtime / dfi.runtime) * 100
    table.note(f"replicate join vs DFI radix join: {improvement:+.1f}% "
               "(paper: ~-20% runtime)")
    report(table)
    assert mpi.matches == dfi.matches == fr.matches == OUTER_SIZE
    assert dfi.runtime < mpi.runtime
    assert fr.runtime < dfi.runtime  # the Fig. 14 headline
