"""Shared fixtures for the figure-regeneration benches."""

import pytest


@pytest.fixture
def report(capsys):
    """Print a result table straight to the terminal (bypassing capture)
    after saving it under benchmarks/results/."""

    def _emit(table):
        rendered = table.emit()
        with capsys.disabled():
            print()
            print(rendered)
        return rendered

    return _emit
