"""Congestion pathology benchmark: incast, fairness, victim-behind-elephant.

Runs the three congestion scenarios from ``repro.bench.flows`` with the
plane off and on (``CongestionConfig.datacenter()``) and records the
*simulated* outcomes: completion times, ECN mark counts, PFC stalls,
peak virtual-queue depth, Jain's fairness index, and the on/off
completion-time inflation per cell. Everything reported is simulated
metrics — bit-reproducible per seed — so unlike the wall-clock benches
``--check`` is a hard gate: any drift from the committed
``BENCH_congestion.json`` exits non-zero.

The run itself asserts the headline acceptance invariants:

* the 32:1 incast cell shows measurable queue buildup and marking
  (peak at the configured capacity, marks > 0);
* the virtual queue never exceeds its byte capacity in any cell;
* completion-time inflation (congestion on vs off) stays bounded;
* the 32:1 congested cell is bit-reproducible run-to-run.

Run with::

    PYTHONPATH=src python benchmarks/perf/bench_congestion.py
    PYTHONPATH=src python benchmarks/perf/bench_congestion.py \
        --check benchmarks/perf/BENCH_congestion.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from repro.bench.flows import (  # noqa: E402
    measure_fairness,
    measure_incast,
    measure_victim,
)
from repro.core import FlowOptions  # noqa: E402
from repro.simnet import CongestionConfig  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "BENCH_congestion.json")

INCAST_FANINS = (8, 16, 32)
SEED = 3
#: On/off completion-time inflation ceiling per cell (the rate floor and
#: the tuned datacenter() recovery constants keep the real ratios near 1).
MAX_INFLATION = 3.0


def _options(congestion: bool) -> FlowOptions:
    if congestion:
        return FlowOptions(congestion=CongestionConfig.datacenter())
    return FlowOptions()


def _congestion_summary(cluster, link_name: str) -> dict:
    stats = cluster.congestion.stats()
    link = stats["links"].get(link_name, {})
    return {
        "ecn_marks": stats["ecn_marks"],
        "cnps_delivered": stats["cnps_delivered"],
        "pfc_stalls": stats["pfc_stalls"],
        "peak_queue_bytes": link.get("peak_queue_bytes", 0),
        "mark_rate": link.get("mark_rate", 0.0),
    }


def _incast_cells() -> list:
    config = CongestionConfig.datacenter()
    cells = []
    for senders in INCAST_FANINS:
        off = measure_incast(senders, seed=SEED)
        on = measure_incast(senders, options=_options(True), seed=SEED)
        summary = _congestion_summary(on["cluster"], "node0.down")
        inflation = on["elapsed_ns"] / off["elapsed_ns"]
        cell = {
            "senders": senders,
            "elapsed_off_ns": off["elapsed_ns"],
            "elapsed_on_ns": on["elapsed_ns"],
            "inflation": inflation,
            **summary,
        }
        cells.append(cell)
        assert summary["peak_queue_bytes"] <= config.queue_capacity, (
            f"{senders}:1 virtual queue exceeded capacity: {summary}")
        assert inflation <= MAX_INFLATION, (
            f"{senders}:1 completion-time inflation {inflation:.2f} "
            f"exceeds {MAX_INFLATION}")
    # Headline acceptance: the 32:1 cell must really congest and mark.
    top = cells[-1]
    assert top["ecn_marks"] > 0 and top["peak_queue_bytes"] > 0, top
    # And must be bit-reproducible.
    again = measure_incast(32, options=_options(True), seed=SEED)
    assert again["elapsed_ns"] == top["elapsed_on_ns"], "incast drifted"
    return cells


def _fairness_cell() -> dict:
    off = measure_fairness(4, seed=7)
    on = measure_fairness(4, options=_options(True), seed=7)
    return {
        "tenants": 4,
        "jain_off": off["jain_index"],
        "jain_on": on["jain_index"],
        "makespan_off_ns": off["makespan_ns"],
        "makespan_on_ns": on["makespan_ns"],
    }


def _victim_cell() -> dict:
    off = measure_victim(seed=5)
    on = measure_victim(options=_options(True), seed=5)
    summary = _congestion_summary(on["cluster"], "node0.down")
    return {
        "victim_off_ns": off["victim_elapsed_ns"],
        "victim_on_ns": on["victim_elapsed_ns"],
        "elephant_off_ns": off["elephant_elapsed_ns"],
        "elephant_on_ns": on["elephant_elapsed_ns"],
        "ecn_marks": summary["ecn_marks"],
    }


def run_bench() -> dict:
    return {
        "bench": "congestion",
        "seed": SEED,
        "config": "datacenter",
        "incast": _incast_cells(),
        "fairness": _fairness_cell(),
        "victim": _victim_cell(),
    }


def _print_report(report: dict) -> None:
    for cell in report["incast"]:
        print(f"incast {cell['senders']:>2}:1  "
              f"off={cell['elapsed_off_ns']:>10.0f}ns "
              f"on={cell['elapsed_on_ns']:>10.0f}ns "
              f"x{cell['inflation']:.2f}  marks={cell['ecn_marks']} "
              f"pfc={cell['pfc_stalls']} "
              f"peak={cell['peak_queue_bytes']}B "
              f"mark_rate={cell['mark_rate']:.3f}")
    fair = report["fairness"]
    print(f"fairness 4-tenant  jain off={fair['jain_off']:.4f} "
          f"on={fair['jain_on']:.4f}  makespan "
          f"off={fair['makespan_off_ns']:.0f}ns "
          f"on={fair['makespan_on_ns']:.0f}ns")
    victim = report["victim"]
    print(f"victim  off={victim['victim_off_ns']:.0f}ns "
          f"on={victim['victim_on_ns']:.0f}ns  elephant "
          f"off={victim['elephant_off_ns']:.0f}ns "
          f"on={victim['elephant_on_ns']:.0f}ns")


def _check(report: dict, baseline_path: str) -> int:
    """Hard gate: every simulated metric must match the committed
    baseline exactly (the scenarios are deterministic by contract)."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    drift = []

    def compare(path, fresh, committed):
        if isinstance(committed, dict):
            for key in committed:
                compare(f"{path}.{key}", fresh.get(key), committed[key])
        elif isinstance(committed, list):
            for i, item in enumerate(committed):
                compare(f"{path}[{i}]", fresh[i], item)
        elif fresh != committed:
            drift.append(f"{path}: {committed!r} -> {fresh!r}")

    compare("congestion", report, baseline)
    if drift:
        print(f"DRIFT vs {os.path.basename(baseline_path)}:")
        for line in drift:
            print(f"  {line}")
        return 1
    print(f"check OK: all simulated metrics match "
          f"{os.path.basename(baseline_path)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare a fresh run against a committed "
                             "BENCH_congestion.json; exit non-zero on "
                             "any simulated-metric drift")
    parser.add_argument("--json", metavar="PATH", default=OUTPUT,
                        help=f"output path (default {OUTPUT})")
    args = parser.parse_args(argv)
    report = run_bench()
    _print_report(report)
    if args.check:
        return _check(report, args.check)
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
