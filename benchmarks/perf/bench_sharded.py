"""Wall-clock bench of the sharded event kernel at cluster scale.

Three layers, one JSON:

* **mesh64** — the 64-node 8×8 shuffle mesh on the in-process kernel at
  shards ∈ {1, 2, 4, 8}, hard-asserting that the simulated clock is
  bit-identical across shard counts (the determinism contract) while
  timing each. These numbers are *honest*: exact global ``(time, seq)``
  order means the merge cannot exploit the lookahead to run lanes ahead,
  so on a symmetric mesh the sharded kernel pays merge overhead and runs
  *slower* single-threaded than the single-queue kernel. The committed
  JSON records that cost; CI gates on determinism and the ±20% band,
  not on an aspirational speedup (see ``simnet/shard.py`` for why the
  order must stay exact).
* **shuffle256** — the acceptance scenario: a 256-node cluster running
  32 concurrent 8:8 shuffle flows, at shards=1 and rack-aligned
  shards=32, same bit-identical-sim hard gate.
* **partitioned** — where the wall-clock win actually lives: four
  isolated 32-node mesh partitions driven serially vs. through the
  multiprocess window executor (:func:`repro.simnet.run_partitioned`),
  hard-asserting identical simulated results and reporting the measured
  multi-core speedup.

Run with::

    PYTHONPATH=src python benchmarks/perf/bench_sharded.py [--profile]

Emits ``benchmarks/perf/BENCH_sharded.json``. ``--check <committed>``
compares a fresh run against the committed baseline: simulated ns are
hard-asserted bit-identical, throughput is a ±20% report-only band
(exit 0), the convention every perf bench here follows.
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from profutil import maybe_profiled  # noqa: E402

from repro.bench.flows import run_shuffle_mesh  # noqa: E402
from repro.simnet import run_partitioned  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "BENCH_sharded.json")

#: Sim horizon for the partitioned scenario: far past mesh completion,
#: identical on the serial and multiprocess paths.
_PARTITION_UNTIL = 100_000_000.0
_PARTITION_COUNT = 4


#: Best-of reps for the in-process mesh scenarios (wall-clock noise on
#: shared CI hosts; the simulated clock is asserted identical across
#: reps and shard counts regardless).
REPS = int(os.environ.get("BENCH_SHARDED_REPS", 2))


def _mesh_entry(name: str, groups: int, group_size: int,
                tuples_per_source: int, shards: int) -> dict:
    result = run_shuffle_mesh(groups, group_size,
                              tuples_per_source=tuples_per_source,
                              shards=shards)
    for _ in range(REPS - 1):
        rep = run_shuffle_mesh(groups, group_size,
                               tuples_per_source=tuples_per_source,
                               shards=shards)
        assert rep["sim_ns"] == result["sim_ns"], (
            name, rep["sim_ns"], result["sim_ns"])
        if rep["wall_seconds"] < result["wall_seconds"]:
            result = rep
    cluster = result.pop("cluster")
    events = cluster.env._sequence
    kernel = cluster.metrics_snapshot()["kernel"]
    entry = {
        "scenario": name,
        "nodes": result["nodes"],
        "shards": result["shards"],
        "flows": result["flows"],
        "tuples": result["tuples"],
        "events": events,
        "wall_seconds": result["wall_seconds"],
        "events_per_sec": events / result["wall_seconds"],
        "tuples_per_sec": result["tuples"] / result["wall_seconds"],
        "simulated_elapsed_ns": result["sim_ns"],
    }
    if result["shards"] > 1:
        entry["mailbox_crossings"] = kernel["mailbox_crossings"]
        entry["drain_rounds"] = kernel["drain_rounds"]
        entry["horizon_stalls"] = kernel["horizon_stalls"]
    return entry


def _build_partition(index: int):
    """One isolated partition: a 4-group × 8-node shuffle mesh, spawned
    and ready for ``cluster.run`` (the window executor drives it)."""
    from repro.core import FLOW_END, DfiRuntime, Endpoint, FlowOptions, Schema
    from repro.simnet import Cluster

    groups, group_size, per_source = 4, 8, 1024
    cluster = Cluster.racked(groups, group_size, seed=1000 + index)
    dfi = DfiRuntime(cluster)
    schema = Schema(("key", "uint64"), ("pad", 56))
    pad = b"x" * 56
    options = FlowOptions(source_segments=4, target_segments=16,
                          credit_threshold=8)
    for group in range(groups):
        base = group * group_size
        endpoints = [Endpoint(base + n, 0) for n in range(group_size)]
        dfi.init_shuffle_flow(f"part{group}", endpoints, endpoints, schema,
                              shuffle_key="key", options=options)

    def source_thread(flow, idx, node_id):
        source = yield from dfi.open_source(flow, idx)
        for start in range(0, per_source, 32):
            rows = [((start + i) * 2654435761 + idx + node_id, pad)
                    for i in range(min(32, per_source - start))]
            yield from source.push_batch(rows)
        yield from source.close()

    def target_thread(flow, idx):
        target = yield from dfi.open_target(flow, idx)
        while (yield from target.consume_batch()) is not FLOW_END:
            pass

    for group in range(groups):
        base = group * group_size
        flow = f"part{group}"
        for idx in range(group_size):
            node = cluster.node(base + idx)
            node.spawn(source_thread(flow, idx, node.node_id))
            node.spawn(target_thread(flow, idx))
    return cluster


def _collect_partition(cluster) -> dict:
    """Picklable sim signature of one finished partition — what the
    serial-vs-multiprocess hard gate compares."""
    return {
        "bytes_received": cluster.total_bytes_received(),
        "unicasts": cluster.fabric.unicast_count,
        "events": cluster.env._sequence,
    }


def _partitioned_entries() -> list[dict]:
    builders = [(lambda index=index: _build_partition(index))
                for index in range(_PARTITION_COUNT)]
    start = time.perf_counter()
    serial = run_partitioned(builders, until=_PARTITION_UNTIL,
                             processes=1, collect=_collect_partition)
    wall_serial = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_partitioned(builders, until=_PARTITION_UNTIL,
                               processes=_PARTITION_COUNT,
                               collect=_collect_partition)
    wall_mp = time.perf_counter() - start
    assert serial == parallel, (
        "multiprocess partitions diverged from the serial run:\n"
        f"serial   {serial}\nparallel {parallel}")
    events = sum(part["events"] for part in serial)
    signature = float(sum(part["bytes_received"] for part in serial))
    cpus = os.cpu_count() or 1
    return [
        {"scenario": "partitioned-serial", "nodes": 32 * _PARTITION_COUNT,
         "shards": _PARTITION_COUNT, "events": events,
         "wall_seconds": wall_serial,
         "events_per_sec": events / wall_serial,
         # The cross-run signature: total simulated payload bytes — the
         # serial/mp equality assert above already proved the full
         # per-partition signatures match.
         "simulated_elapsed_ns": signature},
        # Honest speedup: wall_serial / wall_mp on THIS host, with the
        # core count recorded. On a 1-CPU host the fork path still runs
        # (the equality assert is the point) but shows a slowdown —
        # the GIL-free win needs cores, not processes.
        {"scenario": f"partitioned-mp{_PARTITION_COUNT}",
         "nodes": 32 * _PARTITION_COUNT,
         "shards": _PARTITION_COUNT, "events": events, "cpus": cpus,
         "wall_seconds": wall_mp, "events_per_sec": events / wall_mp,
         "speedup_vs_serial": wall_serial / wall_mp,
         "simulated_elapsed_ns": signature},
    ]


def run_all() -> dict:
    results = {"bench": "sharded", "scenarios": []}
    # Warm run: imports, codegen, allocator.
    run_shuffle_mesh(2, 4, tuples_per_source=32, shards=2)

    mesh = [_mesh_entry(f"mesh64-shards{s}", 8, 8, 512, s)
            for s in (1, 2, 4, 8)]
    sim_ref = mesh[0]["simulated_elapsed_ns"]
    for entry in mesh[1:]:
        assert entry["simulated_elapsed_ns"] == sim_ref, (
            f"{entry['scenario']}: simulated clock diverged from shards=1: "
            f"{entry['simulated_elapsed_ns']} != {sim_ref}")

    big = [_mesh_entry("shuffle256-shards1", 32, 8, 128, 1),
           _mesh_entry("shuffle256-shards32", 32, 8, 128, 32)]
    assert (big[0]["simulated_elapsed_ns"]
            == big[1]["simulated_elapsed_ns"]), (
        "256-node shuffle: sharded simulated clock diverged: "
        f"{big[1]['simulated_elapsed_ns']} != "
        f"{big[0]['simulated_elapsed_ns']}")

    scenarios = mesh + big + _partitioned_entries()
    for entry in scenarios:
        results["scenarios"].append(entry)
        extra = ""
        if "speedup_vs_serial" in entry:
            extra = f"  ({entry['speedup_vs_serial']:4.2f}x vs serial)"
        print(f"{entry['scenario']:>22}: {entry['events_per_sec']:10.0f} "
              f"events/s wall, sim {entry['simulated_elapsed_ns']:14.2f}"
              f"{extra}")
    return results


def check_against(committed_path: str, fresh: dict) -> None:
    """±20% report-only band on events/s; **hard gate** on the simulated
    record (bit-identical or the check dies)."""
    with open(committed_path) as fh:
        committed = json.load(fh)
    baseline = {entry["scenario"]: entry
                for entry in committed.get("scenarios", [])}
    print(f"\n--- regression check vs {committed_path} (+-20% band, "
          f"report-only) ---")
    for entry in fresh["scenarios"]:
        name = entry["scenario"]
        ref = baseline.get(name)
        if ref is None:
            print(f"{name:>22}: NEW (no committed baseline)")
            continue
        assert (entry["simulated_elapsed_ns"]
                == ref["simulated_elapsed_ns"]), (
            f"{name}: simulated record drifted from the committed one: "
            f"{entry['simulated_elapsed_ns']} != "
            f"{ref['simulated_elapsed_ns']}")
        ratio = entry["events_per_sec"] / ref["events_per_sec"]
        verdict = "ok" if 0.8 <= ratio else "REGRESSION?"
        if ratio > 1.2:
            verdict = "faster"
        print(f"{name:>22}: {ratio:5.2f}x committed  [{verdict}]")
    print("--- end regression check (simulated record hard-gated, "
          "events/s informational) ---")


def main() -> None:
    args = sys.argv[1:]
    check_path = None
    if args and args[0] == "--check":
        check_path = args[1] if len(args) > 1 else OUTPUT
    results = run_all()
    if check_path is not None:
        check_against(check_path, results)
        return  # report-only: never rewrites the committed JSON
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    maybe_profiled(main)
