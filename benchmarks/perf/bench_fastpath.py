"""Wall-clock microbench of steady-state event elision (the fast path).

Runs the canonical 64 B batched 1:8 bandwidth shuffle twice — fast path
on (fused macro-events, merged wake+poll) and off (the verbatim
event-by-event path behind ``REPRO_NO_FASTPATH``) — and reports, per
mode:

* wall tuples/s (host-speed dependent, report-only);
* simulated elapsed ns (the determinism gate: **bit-identical across
  the two modes**, and bit-identical to the committed record under
  ``--check`` — the fast path is a wall-clock optimization only);
* kernel events executed and events per wire segment (the elision
  measurement: the fused path collapses the per-segment commit/ack/wake
  cascade into one macro-event arm per doorbell train).

Unlike ``bench_columnar`` (which times tuple construction as part of
its source loop), the tuple batches here are materialized **before**
the simulation starts: this bench measures the transport hot path the
elision targets, not Python tuple literal construction. The simulated
ns therefore differs from bench_columnar's record only by that
construction's absence — the workload on the wire is identical.

Run with::

    PYTHONPATH=src python benchmarks/perf/bench_fastpath.py

Emits ``benchmarks/perf/BENCH_fastpath.json``. ``--check <committed>``
compares a fresh run against the committed baseline (±20% band on
tuples/s, report-only exit 0) and hard-asserts (exit 1) that the
simulated ns of every scenario is bit-identical to the committed
record and that the on/off pair still agrees. ``--profile`` wraps the
run in cProfile.
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from profutil import maybe_profiled  # noqa: E402

from repro.common import config  # noqa: E402
from repro.core import (  # noqa: E402
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Optimization,
    Schema,
)
from repro.simnet import Cluster  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "BENCH_fastpath.json")

REPS = int(os.environ.get("BENCH_FASTPATH_REPS", 3))
TOTAL_BYTES = int(os.environ.get("BENCH_FASTPATH_BYTES", 4 << 20))

TUPLE_SIZE = 64
TARGETS = 8
BATCH = 1024

#: The committed wall number for this same scenario from the columnar
#: hot-path PR (``shuffle-1to8-64B-batched`` in BENCH_columnar.json as
#: of that PR) — the reference the elision work is measured against.
#: Wall tuples/s is host-speed dependent, so the ratio is report-only;
#: the hard gates are the sim-ns and event-count exact matches.
PR6_COMMITTED_TUPLES_PER_SEC = 1_159_907.40


def _run_shuffle(fastpath: bool) -> dict:
    """One 64 B batched 1:8 shuffle with the fast path on or off."""
    saved = config.FASTPATH_ENABLED
    config.FASTPATH_ENABLED = fastpath
    try:
        cluster = Cluster(node_count=1 + TARGETS)
        dfi = DfiRuntime(cluster)
        schema = Schema(("key", "uint64"), ("pad", TUPLE_SIZE - 8))
        dfi.init_shuffle_flow(
            "fp", [Endpoint(0, 0)],
            [Endpoint(1 + n, 0) for n in range(TARGETS)],
            schema, shuffle_key="key", optimization=Optimization.BANDWIDTH,
            options=FlowOptions())
        count = TOTAL_BYTES // TUPLE_SIZE
        pad = b"x" * (TUPLE_SIZE - 8)
        # Materialize the input up front: the timed region is the
        # transport (route/pack/post/commit/consume), not tuple literal
        # construction.
        batches = [[(i, pad) for i in range(start,
                                            min(start + BATCH, count))]
                   for start in range(0, count, BATCH)]
        window = {"start": None, "end": 0.0}
        stats = {"segments": 0}

        def source_thread():
            source = yield from dfi.open_source("fp", 0)
            window["start"] = cluster.now
            for batch in batches:
                yield from source.push_batch(batch)
            yield from source.close()
            stats["segments"] = sum(
                channel.segments_sent
                for channel in source._channels)

        received = [0] * TARGETS

        def target_thread(index):
            target = yield from dfi.open_target("fp", index)
            while True:
                batch = yield from target.consume_batch()
                if batch is FLOW_END:
                    break
                received[index] += len(batch)
            window["end"] = max(window["end"], cluster.now)

        cluster.node(0).spawn(source_thread())
        for n in range(TARGETS):
            cluster.node(1 + n).spawn(target_thread(n))
        events_before = cluster.env.events_executed
        start = time.perf_counter()
        cluster.run()
        wall = time.perf_counter() - start
        events = cluster.env.events_executed - events_before
        assert sum(received) == count
        segments = stats["segments"]
        return {
            "tuples": count,
            "wall_seconds": wall,
            "tuples_per_sec": count / wall,
            "simulated_elapsed_ns": window["end"] - window["start"],
            "events_executed": events,
            "segments": segments,
            "events_per_segment": events / segments if segments else 0.0,
        }
    finally:
        config.FASTPATH_ENABLED = saved


def _best_of(fastpath: bool) -> dict:
    """Best wall time of REPS runs; simulated ns must agree across reps
    (host speed moves tuples/s, never simulated time)."""
    best = None
    for _ in range(REPS):
        result = _run_shuffle(fastpath)
        if best is None:
            best = result
        else:
            if result["simulated_elapsed_ns"] != best["simulated_elapsed_ns"]:
                raise AssertionError(
                    f"simulated ns drifted across reps: "
                    f"{result['simulated_elapsed_ns']!r} vs "
                    f"{best['simulated_elapsed_ns']!r}")
            if result["events_executed"] != best["events_executed"]:
                raise AssertionError(
                    f"event count drifted across reps: "
                    f"{result['events_executed']} vs "
                    f"{best['events_executed']}")
            if result["wall_seconds"] < best["wall_seconds"]:
                best = result
    return best


def run() -> dict:
    on = _best_of(True)
    off = _best_of(False)
    if on["simulated_elapsed_ns"] != off["simulated_elapsed_ns"]:
        raise AssertionError(
            f"fast path is not timing-neutral: on="
            f"{on['simulated_elapsed_ns']!r} ns vs off="
            f"{off['simulated_elapsed_ns']!r} ns")
    scenarios = []
    for mode, result in (("fastpath", on), ("eventpath", off)):
        entry = {"scenario": f"shuffle-1to8-64B-batched-{mode}",
                 "mode": mode, "reps": REPS}
        entry.update(result)
        scenarios.append(entry)
    return {
        "bench": "fastpath",
        "tuple_size": TUPLE_SIZE,
        "targets": TARGETS,
        "batch": BATCH,
        "scenarios": scenarios,
        "speedup_wall": off["wall_seconds"] / on["wall_seconds"],
        "events_elided": off["events_executed"] - on["events_executed"],
        "pr6_committed_tuples_per_sec": PR6_COMMITTED_TUPLES_PER_SEC,
        "speedup_vs_pr6_committed":
            on["tuples_per_sec"] / PR6_COMMITTED_TUPLES_PER_SEC,
    }


def check_against(path: str, fresh: dict) -> int:
    with open(path) as fh:
        committed = json.load(fh)
    failures = 0
    committed_by = {s["scenario"]: s for s in committed["scenarios"]}
    for scenario in fresh["scenarios"]:
        name = scenario["scenario"]
        base = committed_by.get(name)
        if base is None:
            print(f"MISSING {name}: not in committed baseline")
            failures += 1
            continue
        if scenario["simulated_elapsed_ns"] != base["simulated_elapsed_ns"]:
            print(f"SIM-NS MISMATCH {name}: fresh "
                  f"{scenario['simulated_elapsed_ns']!r} vs committed "
                  f"{base['simulated_elapsed_ns']!r}")
            failures += 1
        if scenario["events_executed"] != base["events_executed"]:
            print(f"EVENTS MISMATCH {name}: fresh "
                  f"{scenario['events_executed']} vs committed "
                  f"{base['events_executed']}")
            failures += 1
        ratio = scenario["tuples_per_sec"] / base["tuples_per_sec"]
        band = "OK" if 0.8 <= ratio <= 1.2 else "DRIFT(report-only)"
        print(f"{band} {name}: {scenario['tuples_per_sec']:,.0f} t/s "
              f"({ratio:.2f}x committed), "
              f"{scenario['events_per_segment']:.2f} events/segment")
    if failures:
        print(f"bench_fastpath: {failures} determinism failure(s)")
        return 1
    print("bench_fastpath: simulated ns and event counts bit-identical "
          "to committed baseline")
    return 0


def main() -> None:
    args = sys.argv[1:]
    fresh = run()
    for scenario in fresh["scenarios"]:
        print(f"{scenario['scenario']:>40}: "
              f"{scenario['tuples_per_sec']:>12,.0f} tuples/s wall, sim "
              f"{scenario['simulated_elapsed_ns']:>12.2f} ns, "
              f"{scenario['events_per_segment']:.2f} events/segment")
    print(f"{'wall speedup (off -> on)':>40}: "
          f"{fresh['speedup_wall']:.2f}x, "
          f"{fresh['events_elided']} events elided")
    print(f"{'vs PR6 committed (report-only)':>40}: "
          f"{fresh['speedup_vs_pr6_committed']:.2f}x of "
          f"{PR6_COMMITTED_TUPLES_PER_SEC:,.0f} t/s")
    if args and args[0] == "--check":
        if len(args) < 2:
            print("usage: bench_fastpath.py --check <baseline.json>")
            sys.exit(2)
        sys.exit(check_against(args[1], fresh))
    with open(OUTPUT, "w") as fh:
        json.dump(fresh, fh, indent=2)
        fh.write("\n")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    maybe_profiled(main)
