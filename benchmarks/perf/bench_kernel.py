"""Wall-clock microbench of the discrete-event kernel.

Measures raw events/sec through ``Environment`` for the event shapes the
DFI hot path produces: timeout storms (NIC timers), zero-delay wakeup
chains (process resume cascades), process ping-pong through manual
events, and a flow-shaped macro-mix (the 64-node 8×8 shuffle mesh). Run
with::

    PYTHONPATH=src python benchmarks/perf/bench_kernel.py [--profile]
        [--shards N]

``--shards N`` runs every scenario on the sharded kernel
(``ShardedEnvironment``) instead of the single-queue ``Environment`` —
simulated results are bit-identical; only wall-clock moves. Emits
``benchmarks/perf/BENCH_kernel.json`` (only when running the default
single-queue kernel, so the committed file stays comparable).
``--profile`` wraps the run in cProfile and prints the top 20 entries by
cumulative time.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from profutil import maybe_profiled  # noqa: E402

from repro.simnet import Environment, ShardedEnvironment  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "BENCH_kernel.json")

#: Kernel factory for the synthetic scenarios (set by --shards).
_SHARDS = 1


def _make_env() -> Environment:
    if _SHARDS > 1:
        return ShardedEnvironment(_SHARDS)
    return Environment()


def bench_timeout_storm(n: int) -> dict:
    """n independent timeouts with distinct delays (heap-heavy)."""
    env = _make_env()
    for i in range(n):
        env.timeout(float(i % 97) + 1.0)
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    return {"name": "timeout_storm", "events": n, "wall_seconds": wall,
            "events_per_sec": n / wall}


def bench_zero_delay_chain(n: int) -> dict:
    """One process yielding n zero-delay timeouts (self-wakeup chain)."""
    env = _make_env()

    def chain(env):
        for _ in range(n):
            yield env.timeout(0.0)

    env.process(chain(env))
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    return {"name": "zero_delay_chain", "events": n, "wall_seconds": wall,
            "events_per_sec": n / wall}


def bench_ping_pong(n: int) -> dict:
    """Two processes handing control back and forth via manual events."""
    env = _make_env()
    state = {"ping": env.event(), "pong": env.event()}

    def pinger(env):
        for _ in range(n):
            state["ping"].succeed()
            event = state["pong"] = env.event()
            yield event

    def ponger(env):
        for _ in range(n):
            event = state["ping"]
            yield event
            state["ping"] = env.event()
            state["pong"].succeed()

    env.process(ponger(env))
    env.process(pinger(env))
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    events = 2 * n
    return {"name": "ping_pong", "events": events, "wall_seconds": wall,
            "events_per_sec": events / wall}


def bench_pooled_timeouts(n: int) -> dict:
    """Sequential timeouts from one process (pool-friendly shape)."""
    env = _make_env()

    def worker(env):
        for i in range(n):
            yield env.timeout(1.0)

    env.process(worker(env))
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    return {"name": "sequential_timeouts", "events": n,
            "wall_seconds": wall, "events_per_sec": n / wall}


def bench_callback_schedule(n: int) -> dict:
    """n direct callbacks via ``schedule_at`` (one timer churn each)."""
    env = _make_env()
    sink = []
    append = sink.append
    for i in range(n):
        env.schedule_at(float(i % 97) + 1.0, lambda: append(None))
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    assert len(sink) == n
    return {"name": "callback_schedule", "events": n, "wall_seconds": wall,
            "events_per_sec": n / wall}


def bench_train_schedule(n: int) -> dict:
    """The same n callbacks posted as trains of 16 via ``schedule_train``
    (one chained recycled timer walks each sorted action list) — the
    kernel shape a doorbell-batched NIC produces."""
    env = _make_env()
    sink = []
    append = sink.append
    for base in range(0, n, 16):
        env.schedule_train([(float(base % 97) + 1.0 + 0.01 * i, append, None)
                            for i in range(min(16, n - base))])
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    assert len(sink) == n
    return {"name": "train_schedule", "events": n, "wall_seconds": wall,
            "events_per_sec": n / wall}


def bench_flow_mesh(_n: int) -> dict:
    """64-node 8×8 shuffle mesh: the kernel under a real flow-shaped
    event mix (fabric arrivals, doorbell trains, footer polls, credit
    writes) rather than a synthetic timer storm. ``events`` counts
    scheduled kernel events (``env._sequence``), the comparable
    population either kernel executes."""
    from repro.bench.flows import run_shuffle_mesh

    result = run_shuffle_mesh(8, 8, tuples_per_source=512, shards=_SHARDS)
    cluster = result.pop("cluster")
    events = cluster.env._sequence
    wall = result["wall_seconds"]
    return {"name": "flow_mesh_64", "events": events, "wall_seconds": wall,
            "events_per_sec": events / wall, "sim_ns": result["sim_ns"],
            "nodes": result["nodes"]}


def main() -> None:
    global _SHARDS
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=1,
                        help="event-kernel shards for every scenario "
                             "(default 1 = single-queue kernel)")
    parser.add_argument("--profile", action="store_true",
                        help=argparse.SUPPRESS)  # handled by profutil
    args, _ = parser.parse_known_args()
    _SHARDS = max(1, args.shards)
    n = int(os.environ.get("BENCH_KERNEL_EVENTS", 200_000))
    results = {"bench": "kernel", "shards": _SHARDS, "scenarios": []}
    for fn in (bench_timeout_storm, bench_zero_delay_chain,
               bench_ping_pong, bench_pooled_timeouts,
               bench_callback_schedule, bench_train_schedule,
               bench_flow_mesh):
        entry = fn(n)
        results["scenarios"].append(entry)
        print(f"{entry['name']:>20}: {entry['events_per_sec']:12.0f} "
              f"events/s")
    if _SHARDS == 1:
        with open(OUTPUT, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"wrote {OUTPUT}")
    else:
        print(f"--shards {_SHARDS}: not overwriting {OUTPUT} "
              f"(committed numbers are single-queue)")


if __name__ == "__main__":
    maybe_profiled(main)
