"""Wall-clock microbench of the DFI push hot path.

Unlike the figure benches (which report *simulated* bandwidth), this bench
measures how fast the simulator itself chews through tuples — real seconds
per simulated push. It is the perf trajectory we track across PRs: the
ROADMAP north star is "as fast as the hardware allows", and for a
simulator the hardware limit is the host CPU.

Run with::

    PYTHONPATH=src python benchmarks/perf/bench_push_path.py [--profile]

Emits ``benchmarks/perf/BENCH_push_path.json`` with tuples/sec per
scenario plus the simulated GiB/s (which must not change when the hot
path gets faster — determinism guard). ``--profile`` wraps the run in
cProfile and prints the top 20 entries by cumulative time.
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from profutil import maybe_profiled  # noqa: E402

from repro.bench.flows import measure_shuffle_bandwidth  # noqa: E402
from repro.common.units import GIB, SECONDS  # noqa: E402
from repro.core import (  # noqa: E402
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Optimization,
    Schema,
)
from repro.simnet import Cluster  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "BENCH_push_path.json")

#: Number of timed repetitions per scenario; the best (max tuples/s) is
#: reported, standard microbench practice to shed scheduler noise (the
#: consume and doorbell benches use the same convention).
REPS = int(os.environ.get("BENCH_PUSH_REPS", 3))


def _schema(tuple_size: int) -> Schema:
    if tuple_size <= 8:
        return Schema(("key", "uint64"))
    return Schema(("key", "uint64"), ("pad", tuple_size - 8))


def _run_shuffle(tuple_size: int, total_bytes: int, mode: str,
                 optimization=Optimization.BANDWIDTH) -> dict:
    """One 1:8 shuffle run; returns wall-clock + simulated metrics.

    ``mode`` selects the push API exercised by the source thread:

    * ``per-tuple`` — one ``push`` per tuple (the pre-PR hot path; tuple
      construction happens inline, as any application's would);
    * ``batched``  — ``push_batch`` in 1024-tuple chunks, constructed
      inline inside the measured window (fair vs. per-tuple);
    * ``bytes``    — ``push_bytes`` of pre-partitioned packed rows with
      direct routing (the paper's third routing mode). This models an
      operator whose output already lives in row format — e.g. a
      partitioned spill file — so the slab is prepared *before* the
      measured window and the source only pays the zero-copy push path.
    """
    target_nodes = 8
    cluster = Cluster(node_count=1 + target_nodes)
    # Counters stay on for the measured run: the <=5% overhead claim is
    # bench_obs_overhead.py's job; here the registry IS the tally, so the
    # bench output and the telemetry plane can never disagree.
    cluster.enable_observability()
    dfi = DfiRuntime(cluster)
    schema = _schema(tuple_size)
    dfi.init_shuffle_flow(
        "bench", [Endpoint(0, 0)],
        [Endpoint(1 + n, 0) for n in range(target_nodes)],
        schema, shuffle_key="key", optimization=optimization,
        options=FlowOptions())
    count = total_bytes // tuple_size
    pad = b"x" * (tuple_size - 8)
    window = {"start": None, "end": 0.0}
    slab = None
    if mode == "bytes":
        # Pre-partitioned packed rows, pushed in segment-sized chunks
        # round-robin over the targets (feeds all rings evenly, like the
        # hash router's traffic pattern does).
        slab = memoryview(b"".join(
            schema.pack((i, pad)) for i in range(count)))

    def source_thread():
        source = yield from dfi.open_source("bench", 0)
        window["start"] = cluster.now
        if mode == "batched":
            pushed = 0
            while pushed < count:
                n = min(1024, count - pushed)
                batch = [(i, pad) for i in range(pushed, pushed + n)]
                yield from source.push_batch(batch)
                pushed += n
        elif mode == "bytes":
            chunk = (8192 // tuple_size) * tuple_size
            offset, t = 0, 0
            size = len(slab)
            while offset < size:
                end = min(offset + chunk, size)
                yield from source.push_bytes(slab[offset:end], target=t)
                t = (t + 1) % target_nodes
                offset = end
        else:
            for i in range(count):
                yield from source.push((i, pad))
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("bench", index)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                window["end"] = max(window["end"], cluster.now)
                return

    cluster.env.process(source_thread())
    for n in range(target_nodes):
        cluster.env.process(target_thread(n))
    wall_start = time.perf_counter()
    cluster.run()
    wall = time.perf_counter() - wall_start
    elapsed_ns = window["end"] - window["start"]
    # The reported tuple count comes from the telemetry plane, not a
    # bench-local tally — cross-checked here against the ground truth.
    pushed = cluster.node(0).metrics.get("core.tuples_pushed")
    assert pushed == count, (pushed, count)
    return {
        "tuple_size": tuple_size,
        "tuples": pushed,
        "mode": mode,
        "wall_seconds": wall,
        "tuples_per_sec": count / wall,
        "simulated_elapsed_ns": elapsed_ns,
        "simulated_gib_s": (count * tuple_size) / elapsed_ns * SECONDS / GIB,
    }


def _supports_batch() -> bool:
    from repro.core.shuffle import ShuffleSource
    return hasattr(ShuffleSource, "push_batch")


def _best_of(fn, *args) -> dict:
    """Run a scenario ``REPS`` times, report the best wall-clock rep.

    Simulated metrics must be bit-identical across reps (the simulator is
    deterministic); any divergence is a correctness bug, so it asserts.
    """
    best = fn(*args)
    for _ in range(REPS - 1):
        rep = fn(*args)
        assert rep["simulated_elapsed_ns"] == best["simulated_elapsed_ns"], (
            rep["mode"], rep["simulated_elapsed_ns"],
            best["simulated_elapsed_ns"])
        if rep["tuples_per_sec"] > best["tuples_per_sec"]:
            best = rep
    best["reps"] = REPS
    return best


def main() -> None:
    total_bytes = int(os.environ.get("BENCH_PUSH_BYTES", 4 << 20))
    results = {"bench": "push_path", "total_bytes": total_bytes,
               "reps": REPS, "scenarios": []}
    scenarios = [(64, "per-tuple"), (256, "per-tuple"), (1024, "per-tuple")]
    if _supports_batch():
        scenarios += [(64, "batched"), (256, "batched"), (1024, "batched"),
                      (64, "bytes")]
    # Warm the interpreter on a small run before anything is timed.
    _run_shuffle(64, min(total_bytes, 256 << 10), "per-tuple")
    for tuple_size, mode in scenarios:
        entry = _best_of(_run_shuffle, tuple_size, total_bytes, mode)
        results["scenarios"].append(entry)
        print(f"shuffle/bw {entry['tuple_size']:5d} B {entry['mode']:>9}: "
              f"{entry['tuples_per_sec']:12.0f} tuples/s wall, "
              f"{entry['simulated_gib_s']:6.2f} GiB/s simulated")
    # Cross-check the canonical Fig. 7a measurement path too (used by the
    # determinism guard: its simulated number must never move).
    m = measure_shuffle_bandwidth(64, 1, total_bytes=1 << 20)
    results["fig7a_64B_1src_simulated_bytes_per_ns"] = m.bytes_per_ns
    print(f"fig7a(64 B, 1 src) simulated: {m.bytes_per_ns!r} B/ns")
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    maybe_profiled(main)
