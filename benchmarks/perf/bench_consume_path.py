"""Wall-clock microbench of the DFI consume hot path.

The push-side counterpart (``bench_push_path.py``) made sources cheap;
this bench measures how fast a *target* drains segmented rings — real
seconds per simulated consume. The headline scenario is an 8:1
bandwidth-mode shuffle (eight sources funneling into one target thread),
which is receiver-bound by construction: the consume API is the only
thing that varies between modes.

Run with::

    PYTHONPATH=src python benchmarks/perf/bench_consume_path.py

Emits ``benchmarks/perf/BENCH_consume_path.json`` with tuples/sec per
scenario plus the simulated elapsed ns (which must not change when the
hot path gets faster — determinism guard).

``--check <committed.json>`` re-compares a fresh run against a committed
baseline JSON and reports per-scenario deviation (report-only: the exit
code is always 0; CI uses it as a regression tripwire, not a gate).
``--profile`` wraps the run in cProfile and prints the top 20 entries by
cumulative time.
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from profutil import maybe_profiled  # noqa: E402

from repro.core import (  # noqa: E402
    FLOW_END,
    AggregationSpec,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Schema,
)
from repro.simnet import Cluster  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "BENCH_consume_path.json")

#: Number of timed repetitions per scenario; the best (max tuples/s) is
#: reported, standard microbench practice to shed scheduler noise.
REPS = int(os.environ.get("BENCH_CONSUME_REPS", 3))

#: Pre-PR per-tuple consume throughput (64 B, 8:1 bandwidth shuffle,
#: 4 MiB, warmed interpreter, this same script) recorded on the code
#: state right before the consume-path work landed. The acceptance bar
#: for this PR is >= 2x this number on the batched consume modes. Host
#: speed varies across sessions, so the in-run ``per-tuple`` scenario is
#: the fair comparison point; this constant pins the historical record.
RECORDED_PER_TUPLE_BASELINE = {"tuple_size": 64, "tuples_per_sec": 1019251}


def _schema(tuple_size: int) -> Schema:
    if tuple_size <= 8:
        return Schema(("key", "uint64"))
    return Schema(("key", "uint64"), ("pad", tuple_size - 8))


def _supports(name: str) -> bool:
    from repro.core.shuffle import ShuffleTarget
    return hasattr(ShuffleTarget, name)


def _run_consume(tuple_size: int, total_bytes: int, mode: str) -> dict:
    """One 8:1 bandwidth shuffle run; returns wall-clock + simulated
    metrics.

    Sources always use the fastest push path (``push_bytes`` of
    pre-packed slabs prepared outside the measured window), so the
    receive side dominates. ``mode`` selects the consume API:

    * ``per-tuple`` — one ``consume`` per tuple (the pre-PR hot path);
    * ``batched``   — ``consume_batch`` (drain-all: every ready channel,
      every consecutive consumable segment per wakeup);
    * ``bytes``     — ``consume_bytes`` zero-copy memoryview chunks
      (tuples are counted, never unpacked).
    """
    source_nodes = 8
    cluster = Cluster(node_count=source_nodes + 1)
    # The registry is the tally (see bench_push_path.py): bench output
    # and the telemetry plane can never disagree.
    cluster.enable_observability()
    dfi = DfiRuntime(cluster)
    schema = _schema(tuple_size)
    dfi.init_shuffle_flow(
        "bench", [Endpoint(1 + n, 0) for n in range(source_nodes)],
        [Endpoint(0, 0)], schema, shuffle_key="key",
        options=FlowOptions())
    count = total_bytes // tuple_size
    per_source = count // source_nodes
    pad = b"x" * (tuple_size - 8)
    window = {"start": None, "end": 0.0}
    slabs = [memoryview(b"".join(
        schema.pack((s * per_source + i, pad)) for i in range(per_source)))
        for s in range(source_nodes)]
    consumed = [0]

    def source_thread(index):
        source = yield from dfi.open_source("bench", index)
        if window["start"] is None:
            window["start"] = cluster.now
        # One slab per source: push_bytes segments it internally, so the
        # source side is as cheap as it gets in every mode — the consume
        # API is the only variable.
        yield from source.push_bytes(slabs[index], target=0)
        yield from source.close()

    def target_thread():
        target = yield from dfi.open_target("bench", 0)
        if mode == "batched":
            while True:
                batch = yield from target.consume_batch()
                if batch is FLOW_END:
                    break
                consumed[0] += len(batch)
        elif mode == "bytes":
            while True:
                chunks = yield from target.consume_bytes()
                if chunks is FLOW_END:
                    break
                for chunk in chunks:
                    consumed[0] += len(chunk) // tuple_size
        else:
            while True:
                item = yield from target.consume()
                if item is FLOW_END:
                    break
                consumed[0] += 1
        window["end"] = cluster.now

    for n in range(source_nodes):
        cluster.env.process(source_thread(n))
    cluster.env.process(target_thread())
    wall_start = time.perf_counter()
    cluster.run()
    wall = time.perf_counter() - wall_start
    assert consumed[0] == per_source * source_nodes, consumed[0]
    drained = cluster.node(0).metrics.get("core.tuples_consumed")
    assert drained == consumed[0], (drained, consumed[0])
    return {
        "scenario": f"consume-8to1-{tuple_size}B-{mode}",
        "tuple_size": tuple_size,
        "tuples": drained,
        "mode": mode,
        "wall_seconds": wall,
        "tuples_per_sec": consumed[0] / wall,
        "simulated_elapsed_ns": window["end"] - window["start"],
    }


def _run_end_to_end(tuple_size: int, total_bytes: int, batched: bool) -> dict:
    """1:1 push->consume pipeline: both endpoints on their fast (or slow)
    path — the number an application actually experiences."""
    cluster = Cluster(node_count=2)
    cluster.enable_observability()
    dfi = DfiRuntime(cluster)
    schema = _schema(tuple_size)
    dfi.init_shuffle_flow("e2e", [Endpoint(0, 0)], [Endpoint(1, 0)],
                          schema, shuffle_key="key", options=FlowOptions())
    count = total_bytes // tuple_size
    pad = b"x" * (tuple_size - 8)
    consumed = [0]
    window = {"start": None, "end": 0.0}

    def source_thread():
        source = yield from dfi.open_source("e2e", 0)
        window["start"] = cluster.now
        if batched:
            pushed = 0
            while pushed < count:
                n = min(1024, count - pushed)
                batch = [(i, pad) for i in range(pushed, pushed + n)]
                yield from source.push_batch(batch, target=0)
                pushed += n
        else:
            for i in range(count):
                yield from source.push((i, pad))
        yield from source.close()

    def target_thread():
        target = yield from dfi.open_target("e2e", 0)
        if batched:
            while True:
                batch = yield from target.consume_batch()
                if batch is FLOW_END:
                    break
                consumed[0] += len(batch)
        else:
            while True:
                item = yield from target.consume()
                if item is FLOW_END:
                    break
                consumed[0] += 1
        window["end"] = cluster.now

    cluster.env.process(source_thread())
    cluster.env.process(target_thread())
    wall_start = time.perf_counter()
    cluster.run()
    wall = time.perf_counter() - wall_start
    assert consumed[0] == count
    assert cluster.node(1).metrics.get("core.tuples_consumed") == count
    mode = "batched" if batched else "per-tuple"
    return {
        "scenario": f"e2e-1to1-{tuple_size}B-{mode}",
        "tuple_size": tuple_size,
        "tuples": count,
        "mode": mode,
        "wall_seconds": wall,
        "tuples_per_sec": count / wall,
        "simulated_elapsed_ns": window["end"] - window["start"],
    }


def _run_combiner(total_bytes: int) -> dict:
    """4:1 combiner SUM: measures the batch-fold loop on top of the
    drain path."""
    cluster = Cluster(node_count=5)
    cluster.enable_observability()
    dfi = DfiRuntime(cluster)
    schema = Schema(("group", "uint64"), ("value", "uint64"))
    dfi.init_combiner_flow(
        "agg", [Endpoint(1 + n, 0) for n in range(4)], Endpoint(0, 0),
        schema, aggregation=AggregationSpec("sum", "group", "value"),
        options=FlowOptions())
    per_source = total_bytes // schema.tuple_size // 4
    window = {"start": None, "end": 0.0}
    out = {}

    def source_thread(index):
        source = yield from dfi.open_source("agg", index)
        if window["start"] is None:
            window["start"] = cluster.now
        batch = [(i % 256, 1) for i in range(per_source)]
        yield from source.push_batch(batch)
        yield from source.close()

    def target_thread():
        target = yield from dfi.open_target("agg")
        out["aggregates"] = yield from target.consume_all()
        out["tuples"] = target.tuples_aggregated
        window["end"] = cluster.now

    for index in range(4):
        cluster.env.process(source_thread(index))
    cluster.env.process(target_thread())
    wall_start = time.perf_counter()
    cluster.run()
    wall = time.perf_counter() - wall_start
    assert sum(out["aggregates"].values()) == out["tuples"]
    folded = cluster.node(0).metrics.get("core.tuples_aggregated")
    assert folded == out["tuples"], (folded, out["tuples"])
    return {
        "scenario": "combiner-4to1-16B-fold",
        "tuple_size": schema.tuple_size,
        "tuples": folded,
        "mode": "fold",
        "wall_seconds": wall,
        "tuples_per_sec": out["tuples"] / wall,
        "simulated_elapsed_ns": window["end"] - window["start"],
    }


def _best_of(fn, *args) -> dict:
    """Run a scenario ``REPS`` times, report the best wall-clock rep.

    Simulated metrics must be bit-identical across reps (the simulator is
    deterministic); any divergence is a correctness bug, so it asserts.
    """
    best = fn(*args)
    for _ in range(REPS - 1):
        rep = fn(*args)
        assert rep["simulated_elapsed_ns"] == best["simulated_elapsed_ns"], (
            rep["scenario"], rep["simulated_elapsed_ns"],
            best["simulated_elapsed_ns"])
        if rep["tuples_per_sec"] > best["tuples_per_sec"]:
            best = rep
    best["reps"] = REPS
    return best


def run_all(total_bytes: int) -> dict:
    results = {"bench": "consume_path", "total_bytes": total_bytes,
               "reps": REPS, "scenarios": [],
               "recorded_per_tuple_baseline": RECORDED_PER_TUPLE_BASELINE}
    # Warm the interpreter (imports, bytecode, struct caches, allocator)
    # on a small run of each consume mode before anything is timed.
    warm_bytes = min(total_bytes, 256 << 10)
    for mode in ("per-tuple", "batched", "bytes"):
        if mode == "per-tuple" or _supports(
                "consume_" + ("batch" if mode == "batched" else "bytes")):
            _run_consume(64, warm_bytes, mode)
    runs = [_best_of(_run_consume, 64, total_bytes, "per-tuple"),
            _best_of(_run_consume, 256, total_bytes, "per-tuple")]
    if _supports("consume_batch"):
        runs += [_best_of(_run_consume, 64, total_bytes, "batched"),
                 _best_of(_run_consume, 256, total_bytes, "batched")]
    if _supports("consume_bytes"):
        runs.append(_best_of(_run_consume, 64, total_bytes, "bytes"))
    runs += [_best_of(_run_end_to_end, 64, total_bytes, False),
             _best_of(_run_end_to_end, 64, total_bytes, True),
             _best_of(_run_combiner, total_bytes)]
    per_tuple_64 = runs[0]["tuples_per_sec"]
    recorded = RECORDED_PER_TUPLE_BASELINE["tuples_per_sec"]
    for entry in runs:
        if (entry["tuple_size"] == 64 and entry["mode"] != "per-tuple"
                and entry["scenario"].startswith("consume-")):
            entry["speedup_vs_per_tuple"] = (
                entry["tuples_per_sec"] / per_tuple_64)
            if recorded:
                entry["speedup_vs_recorded"] = (
                    entry["tuples_per_sec"] / recorded)
        results["scenarios"].append(entry)
        speedup = entry.get("speedup_vs_per_tuple")
        extra = f"  ({speedup:4.2f}x vs per-tuple)" if speedup else ""
        if entry.get("speedup_vs_recorded"):
            extra += f" ({entry['speedup_vs_recorded']:4.2f}x vs recorded)"
        print(f"{entry['scenario']:>32}: "
              f"{entry['tuples_per_sec']:12.0f} tuples/s wall, "
              f"sim {entry['simulated_elapsed_ns']:14.2f} ns{extra}")
    return results


def check_against(committed_path: str, fresh: dict) -> None:
    """Report-only regression check: warn when a fresh run's tuples/s
    falls outside a +-20% band around the committed numbers."""
    with open(committed_path) as fh:
        committed = json.load(fh)
    baseline = {entry["scenario"]: entry
                for entry in committed.get("scenarios", [])}
    print(f"\n--- regression check vs {committed_path} (+-20% band, "
          f"report-only) ---")
    for entry in fresh["scenarios"]:
        name = entry["scenario"]
        ref = baseline.get(name)
        if ref is None:
            print(f"{name:>32}: NEW (no committed baseline)")
            continue
        ratio = entry["tuples_per_sec"] / ref["tuples_per_sec"]
        verdict = "ok" if 0.8 <= ratio else "REGRESSION?"
        if ratio > 1.2:
            verdict = "faster"
        print(f"{name:>32}: {ratio:5.2f}x committed  [{verdict}]")
    print("--- end regression check (informational; host speed varies "
          "across runners) ---")


def main() -> None:
    total_bytes = int(os.environ.get("BENCH_CONSUME_BYTES", 4 << 20))
    args = sys.argv[1:]
    check_path = None
    if args and args[0] == "--check":
        check_path = args[1] if len(args) > 1 else OUTPUT
        args = args[2:]
    results = run_all(total_bytes)
    if check_path is not None:
        check_against(check_path, results)
        return  # report-only: never rewrites the committed JSON
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    maybe_profiled(main)
