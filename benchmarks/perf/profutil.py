"""Shared ``--profile`` support for the perf harnesses.

Passing ``--profile`` to any ``bench_*.py`` runs the whole bench under
``cProfile`` and dumps the top 20 entries by cumulative time afterwards —
quick hotspot triage without external tooling. The flag is stripped from
``sys.argv`` before the bench parses its own arguments.
"""

from __future__ import annotations

import cProfile
import pstats
import sys


def maybe_profiled(main) -> None:
    """Run ``main()`` directly, or under cProfile when ``--profile`` is
    present on the command line."""
    if "--profile" not in sys.argv:
        main()
        return
    sys.argv.remove("--profile")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        main()
    finally:
        profiler.disable()
        print("\n--- cProfile: top 20 by cumulative time ---")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative")
        stats.print_stats(20)
