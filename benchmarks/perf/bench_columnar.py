"""Wall-clock microbench of the schema-compiled columnar kernels.

Two layers, one JSON:

* **kernel scenarios** — the generated ``pack_many_into`` /
  ``unpack_rows`` / columnar fold kernels head-to-head against the
  generic ``struct`` fallback on identical inputs, asserting
  byte/aggregate equality while timing both legs (no simulator — this is
  the raw codec speedup);
* **flow scenarios** — the canonical 64 B batched 1:8 shuffle plus the
  byte-mode shuffle and the columnar combiner fold, end-to-end through
  the simulator, with the simulated-ns determinism guard every perf
  bench carries.

Run with::

    PYTHONPATH=src python benchmarks/perf/bench_columnar.py

Emits ``benchmarks/perf/BENCH_columnar.json``. ``--check <committed>``
compares a fresh run against the committed baseline (±20% band,
report-only exit 0, same convention as the other hot-path benches) and
hard-asserts that the simulated ns of every flow scenario is
bit-identical to the committed record — host speed moves tuples/s,
never simulated time. ``--profile`` wraps the run in cProfile.
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from profutil import maybe_profiled  # noqa: E402

from repro.common import config  # noqa: E402
from repro.core import (  # noqa: E402
    FLOW_END,
    AggregationSpec,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Optimization,
    Schema,
)
from repro.simnet import Cluster  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "BENCH_columnar.json")

REPS = int(os.environ.get("BENCH_COLUMNAR_REPS", 3))
TOTAL_BYTES = int(os.environ.get("BENCH_COLUMNAR_BYTES", 4 << 20))


def _generic_schema(*fields) -> Schema:
    """A schema carrying no generated kernels (the REPRO_NO_CODEGEN
    path), built by flipping the config flag around construction only.

    Kernels bind at construction, so the flip cannot mix code paths
    inside a schema; the bench needs both legs in one process to time
    them on identical inputs.
    """
    saved = config.CODEGEN_ENABLED
    config.CODEGEN_ENABLED = False
    try:
        return Schema(*fields)
    finally:
        config.CODEGEN_ENABLED = saved


# -- kernel scenarios (no simulator) -----------------------------------------

def _time_leg(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _kernel_pack(tuple_size: int) -> list:
    fields = (("key", "uint64"), ("pad", tuple_size - 8))
    compiled, generic = Schema(*fields), _generic_schema(*fields)
    count = TOTAL_BYTES // tuple_size
    pad = b"x" * (tuple_size - 8)
    tuples = [(i, pad) for i in range(count)]
    buf_c = bytearray(TOTAL_BYTES)
    buf_g = bytearray(TOTAL_BYTES)

    def pack(schema, buf):
        offset = 0
        for base in range(0, count, 1024):
            chunk = tuples[base:base + 1024]
            schema.pack_many_into(buf, offset, chunk)
            offset += len(chunk) * tuple_size

    wall_c = _time_leg(pack, compiled, buf_c)
    wall_g = _time_leg(pack, generic, buf_g)
    assert buf_c == buf_g, "compiled pack diverged from generic"
    rows_c = unpacked_c = compiled.unpack_rows(memoryview(buf_c))
    rows_g = generic.unpack_rows(memoryview(buf_g))
    assert rows_c == rows_g, "compiled unpack diverged from generic"
    wall_uc = _time_leg(compiled.unpack_rows, memoryview(buf_c))
    wall_ug = _time_leg(generic.unpack_rows, memoryview(buf_g))
    del rows_c, rows_g, unpacked_c
    return [
        _kernel_entry(f"pack-{tuple_size}B", count, wall_c, wall_g),
        _kernel_entry(f"unpack-{tuple_size}B", count, wall_uc, wall_ug),
    ]


def _kernel_route(tuple_size: int) -> list:
    """The shuffle partition kernel: generated fused-hash router vs the
    generic closure (the hot path of every batched key-hash shuffle)."""
    from repro.core.routing import key_hash_router

    fields = (("key", "uint64"), ("pad", tuple_size - 8))
    compiled, generic = Schema(*fields), _generic_schema(*fields)
    count = TOTAL_BYTES // tuple_size
    pad = b"x" * (tuple_size - 8)
    tuples = [(i, pad) for i in range(count)]
    route_c = key_hash_router(compiled, "key").route_many
    route_g = key_hash_router(generic, "key").route_many
    groups_c = route_c(tuples, 8)
    assert groups_c == route_g(tuples, 8), "compiled router diverged"
    del groups_c
    wall_c = _time_leg(route_c, tuples, 8)
    wall_g = _time_leg(route_g, tuples, 8)
    return [_kernel_entry(f"route-{tuple_size}B", count, wall_c, wall_g)]


def _kernel_fold() -> list:
    """Columnar fold on a *wide* tuple: the selective struct format
    decodes only the group and value columns; the generic loop must
    materialize every row (including a 48-byte pad object) first."""
    fields = (("key", "uint64"), ("value", "uint64"), ("pad", 48))
    compiled, generic = Schema(*fields), _generic_schema(*fields)
    count = TOTAL_BYTES // 64
    pad = b"p" * 48
    packed = b"".join(compiled.pack((i % 512, 1, pad))
                      for i in range(count))
    chunks = [memoryview(packed)[off:off + (64 << 10)]
              for off in range(0, len(packed), 64 << 10)]

    def fold_compiled():
        table: dict = {}
        fold = compiled.fold_kernel(0, 1, "sum")(table.get,
                                                 table.__setitem__)
        fold(chunks)
        return table

    def fold_generic():
        # The pre-columnar combiner loop: unpack rows, fold per tuple.
        table: dict = {}
        get, put = table.get, table.__setitem__
        for chunk in chunks:
            for group, value, _pad in generic.unpack_rows(chunk):
                current = get(group)
                put(group, value if current is None else current + value)
        return table

    assert fold_compiled() == fold_generic(), "fold diverged"
    wall_c = _time_leg(fold_compiled)
    wall_g = _time_leg(fold_generic)
    return [_kernel_entry("fold-sum-64B", count, wall_c, wall_g)]


def _kernel_entry(name: str, count: int, wall_compiled: float,
                  wall_generic: float) -> dict:
    return {
        "scenario": f"kernel-{name}",
        "tuples": count,
        "mode": "kernel",
        "wall_seconds": wall_compiled,
        "tuples_per_sec": count / wall_compiled,
        "generic_tuples_per_sec": count / wall_generic,
        "speedup_vs_generic": wall_generic / wall_compiled,
        "simulated_elapsed_ns": 0.0,
        "reps": REPS,
    }


# -- flow scenarios (end-to-end through the simulator) -----------------------

def _run_shuffle(mode: str) -> dict:
    """The canonical columnar gate: 64 B tuples, 1:8 bandwidth shuffle."""
    tuple_size = 64
    target_nodes = 8
    cluster = Cluster(node_count=1 + target_nodes)
    dfi = DfiRuntime(cluster)
    schema = Schema(("key", "uint64"), ("pad", tuple_size - 8))
    dfi.init_shuffle_flow(
        "col", [Endpoint(0, 0)],
        [Endpoint(1 + n, 0) for n in range(target_nodes)],
        schema, shuffle_key="key", optimization=Optimization.BANDWIDTH,
        options=FlowOptions())
    count = TOTAL_BYTES // tuple_size
    pad = b"x" * (tuple_size - 8)
    window = {"start": None, "end": 0.0}
    slab = None
    if mode == "bytes":
        slab = memoryview(b"".join(
            schema.pack((i, pad)) for i in range(count)))

    def source_thread():
        source = yield from dfi.open_source("col", 0)
        window["start"] = cluster.now
        if mode == "batched":
            pushed = 0
            while pushed < count:
                n = min(1024, count - pushed)
                batch = [(i, pad) for i in range(pushed, pushed + n)]
                yield from source.push_batch(batch)
                pushed += n
        else:
            chunk = (8192 // tuple_size) * tuple_size
            offset, t = 0, 0
            size = len(slab)
            while offset < size:
                end = min(offset + chunk, size)
                yield from source.push_bytes(slab[offset:end], target=t)
                t = (t + 1) % target_nodes
                offset = end
        yield from source.close()

    received = [0] * target_nodes

    def target_thread(index):
        target = yield from dfi.open_target("col", index)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                break
            received[index] += len(batch)
        window["end"] = max(window["end"], cluster.now)

    cluster.node(0).spawn(source_thread())
    for n in range(target_nodes):
        cluster.node(1 + n).spawn(target_thread(n))
    start = time.perf_counter()
    cluster.run()
    wall = time.perf_counter() - start
    assert sum(received) == count
    return {
        "scenario": f"shuffle-1to8-64B-{mode}",
        "tuples": count,
        "mode": mode,
        "wall_seconds": wall,
        "tuples_per_sec": count / wall,
        "simulated_elapsed_ns": window["end"] - window["start"],
    }


def _run_combiner() -> dict:
    """8:1 combiner, byte-mode drain + columnar sum fold on the target."""
    sources = 8
    cluster = Cluster(node_count=sources + 1)
    dfi = DfiRuntime(cluster)
    schema = Schema(("key", "uint64"), ("value", "uint64"))
    dfi.init_combiner_flow(
        "colsum", [Endpoint(n, 0) for n in range(sources)],
        Endpoint(sources, 0), schema,
        aggregation=AggregationSpec("sum", "key", "value"),
        optimization=Optimization.BANDWIDTH, options=FlowOptions())
    per_source = TOTAL_BYTES // 16 // sources
    window = {"start": None, "end": 0.0}

    def source_thread(index):
        source = yield from dfi.open_source("colsum", index)
        if window["start"] is None:
            window["start"] = cluster.now
        pushed = 0
        while pushed < per_source:
            n = min(1024, per_source - pushed)
            yield from source.push_batch(
                [(i % 4096, 1) for i in range(pushed, pushed + n)])
            pushed += n
        yield from source.close()

    out = {}

    def target_thread():
        target = yield from dfi.open_target("colsum", 0)
        while (yield from target.consume_step()) is not FLOW_END:
            pass
        out["aggregated"] = target.tuples_aggregated
        window["end"] = cluster.now

    for n in range(sources):
        cluster.node(n).spawn(source_thread(n))
    cluster.node(sources).spawn(target_thread())
    start = time.perf_counter()
    cluster.run()
    wall = time.perf_counter() - start
    count = per_source * sources
    assert out["aggregated"] == count
    return {
        "scenario": "combiner-8to1-16B-fold",
        "tuples": count,
        "mode": "fold",
        "wall_seconds": wall,
        "tuples_per_sec": count / wall,
        "simulated_elapsed_ns": window["end"] - window["start"],
    }


def _best_of(fn, *args) -> dict:
    best = fn(*args)
    for _ in range(REPS - 1):
        rep = fn(*args)
        assert rep["simulated_elapsed_ns"] == best["simulated_elapsed_ns"], (
            rep["scenario"], rep["simulated_elapsed_ns"],
            best["simulated_elapsed_ns"])
        if rep["tuples_per_sec"] > best["tuples_per_sec"]:
            best = rep
    best["reps"] = REPS
    return best


def run_all() -> dict:
    results = {"bench": "columnar", "total_bytes": TOTAL_BYTES,
               "reps": REPS, "codegen": config.CODEGEN_ENABLED,
               "scenarios": []}
    # Warm runs: imports, kernel compilation, allocator.
    _run_shuffle("batched")
    _run_combiner()
    scenarios = _kernel_pack(64) + _kernel_route(64) + _kernel_fold()
    scenarios += [_best_of(_run_shuffle, "batched"),
                  _best_of(_run_shuffle, "bytes"),
                  _best_of(_run_combiner)]
    for entry in scenarios:
        results["scenarios"].append(entry)
        extra = ""
        if "speedup_vs_generic" in entry:
            extra = f"  ({entry['speedup_vs_generic']:4.2f}x vs generic)"
        print(f"{entry['scenario']:>28}: "
              f"{entry['tuples_per_sec']:12.0f} tuples/s wall, "
              f"sim {entry['simulated_elapsed_ns']:12.2f} ns{extra}")
    return results


def check_against(committed_path: str, fresh: dict) -> None:
    """±20% report-only band on tuples/s; **hard gate** on simulated ns
    (bit-identical to the committed record or the check dies)."""
    with open(committed_path) as fh:
        committed = json.load(fh)
    baseline = {entry["scenario"]: entry
                for entry in committed.get("scenarios", [])}
    print(f"\n--- regression check vs {committed_path} (+-20% band, "
          f"report-only) ---")
    for entry in fresh["scenarios"]:
        name = entry["scenario"]
        ref = baseline.get(name)
        if ref is None:
            print(f"{name:>28}: NEW (no committed baseline)")
            continue
        assert (entry["simulated_elapsed_ns"]
                == ref["simulated_elapsed_ns"]), (
            f"{name}: simulated time drifted from the committed record: "
            f"{entry['simulated_elapsed_ns']} != "
            f"{ref['simulated_elapsed_ns']}")
        ratio = entry["tuples_per_sec"] / ref["tuples_per_sec"]
        verdict = "ok" if 0.8 <= ratio else "REGRESSION?"
        if ratio > 1.2:
            verdict = "faster"
        print(f"{name:>28}: {ratio:5.2f}x committed  [{verdict}]")
    print("--- end regression check (simulated ns hard-gated, tuples/s "
          "informational) ---")


def main() -> None:
    args = sys.argv[1:]
    check_path = None
    if args and args[0] == "--check":
        check_path = args[1] if len(args) > 1 else OUTPUT
    results = run_all()
    if check_path is not None:
        check_against(check_path, results)
        return  # report-only: never rewrites the committed JSON
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    maybe_profiled(main)
