"""Consolidated perf-bench runner: one BENCH_all.json trajectory file.

Executes every ``bench_*.py`` in this directory (each refreshes its own
committed ``BENCH_*.json``), then merges those artifacts into a single
``BENCH_all.json`` with a flat per-scenario index (tuples/s or events/s
plus simulated ns where a scenario reports them), so perf trajectories
can be tracked in one file instead of eight scattered ones.

Run with::

    PYTHONPATH=src python benchmarks/perf/run_all.py [filter ...]

Positional arguments filter which benches run (substring match on the
file name); the merge always covers every committed artifact, so a
partial run still produces a complete BENCH_all.json.

``--merge-only`` skips running and just rebuilds BENCH_all.json from
the committed per-bench JSONs — deterministic and fast. ``--check``
compares the merge result against the committed BENCH_all.json and
exits 1 on any difference; with ``--merge-only`` that is a pure
consistency gate (the committed aggregate must always equal the merge
of the committed per-bench files).

Every bench must follow the house idiom ``OUTPUT = os.path.join(HERE,
"BENCH_<name>.json")`` — the runner reads that literal from the source
to learn which artifact belongs to which bench.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.abspath(os.path.join(HERE, os.pardir, os.pardir))
OUTPUT = os.path.join(HERE, "BENCH_all.json")

_OUTPUT_RE = re.compile(
    r'^OUTPUT = os\.path\.join\(HERE, "(BENCH_[A-Za-z0-9_]+\.json)"\)',
    re.MULTILINE)

#: Scenario fields lifted into the flat index (when present).
_INDEX_FIELDS = ("tuples_per_sec", "events_per_sec",
                 "simulated_elapsed_ns", "events_per_segment")


def discover() -> list[tuple[str, str]]:
    """Return ``(bench_file, artifact_file)`` pairs, sorted by name."""
    benches = []
    for filename in sorted(os.listdir(HERE)):
        if not (filename.startswith("bench_") and filename.endswith(".py")):
            continue
        with open(os.path.join(HERE, filename)) as fh:
            match = _OUTPUT_RE.search(fh.read())
        if match is None:
            raise SystemExit(
                f"{filename} does not declare its artifact with the "
                f'OUTPUT = os.path.join(HERE, "BENCH_....json") idiom')
        benches.append((filename, match.group(1)))
    return benches


def run_bench(filename: str) -> int:
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    print(f"=== {filename} ===", flush=True)
    return subprocess.run([sys.executable, os.path.join(HERE, filename)],
                          env=env, cwd=REPO).returncode


def merge(benches: list[tuple[str, str]]) -> dict:
    merged: dict = {"bench": "all", "benchmarks": {}, "scenario_index": []}
    for filename, artifact in benches:
        name = filename[len("bench_"):-len(".py")]
        path = os.path.join(HERE, artifact)
        if not os.path.exists(path):
            print(f"warning: {artifact} missing (bench {name} never run); "
                  f"skipped from the merge")
            continue
        with open(path) as fh:
            doc = json.load(fh)
        merged["benchmarks"][name] = doc
        for scenario in doc.get("scenarios", ()):
            row = {"bench": name, "scenario": scenario.get("scenario")}
            for field in _INDEX_FIELDS:
                if field in scenario:
                    row[field] = scenario[field]
            merged["scenario_index"].append(row)
    return merged


def main() -> None:
    args = sys.argv[1:]
    merge_only = "--merge-only" in args
    check = "--check" in args
    filters = [a for a in args if not a.startswith("--")]
    benches = discover()
    if not merge_only:
        to_run = [(f, a) for f, a in benches
                  if not filters or any(pat in f for pat in filters)]
        failed = [f for f, _ in to_run if run_bench(f) != 0]
        if failed:
            print(f"run_all: bench failure(s): {', '.join(failed)}")
            sys.exit(1)
    merged = merge(benches)
    count = len(merged["scenario_index"])
    if check:
        try:
            with open(OUTPUT) as fh:
                committed = json.load(fh)
        except FileNotFoundError:
            print(f"run_all: no committed {OUTPUT} to check against")
            sys.exit(1)
        if committed != merged:
            print("run_all: BENCH_all.json is out of date with the "
                  "per-bench artifacts — regenerate it with "
                  "run_all.py --merge-only")
            for name in merged["benchmarks"]:
                if committed.get("benchmarks", {}).get(name) \
                        != merged["benchmarks"][name]:
                    print(f"  drifted: {name}")
            sys.exit(1)
        print(f"run_all: BENCH_all.json consistent "
              f"({len(merged['benchmarks'])} benches, {count} scenarios)")
        return
    with open(OUTPUT, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")
    print(f"wrote {OUTPUT} ({len(merged['benchmarks'])} benches, "
          f"{count} scenarios)")


if __name__ == "__main__":
    main()
