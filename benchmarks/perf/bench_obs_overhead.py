"""Wall-clock overhead of the observability plane (``repro.obs``).

Runs the same 64 B batched 1:8 bandwidth shuffle four times — metrics
off, counters on, counters+tracing on, counters+tracing+causal-edge
recording on — and reports the wall-clock overhead ratio of each
enabled mode against the off run. The simulated elapsed ns must be
bit-identical across all four modes (the ``repro.obs`` determinism
contract); the run asserts it.

Run with::

    PYTHONPATH=src python benchmarks/perf/bench_obs_overhead.py

Emits ``benchmarks/perf/BENCH_obs.json``. The PR-5 acceptance bar is
counters-on within 5% of metrics-off on the batched hot path; the run
prints the measured ratios and flags misses, and ``--check`` compares a
fresh run against a committed JSON (report-only, exit 0 either way — CI
runners vary too much in speed for a hard gate). ``--trace-out FILE``
additionally exports the tracing run as a Chrome ``trace_event`` JSON
loadable in Perfetto.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from profutil import maybe_profiled  # noqa: E402

from repro.core import (  # noqa: E402
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Schema,
)
from repro.simnet import Cluster  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "BENCH_obs.json")

#: Number of timed repetitions per mode; the best (max tuples/s) is
#: reported, same convention as the other hot-path benches.
REPS = int(os.environ.get("BENCH_OBS_REPS", 3))

#: Acceptance target: counters-on wall-clock within this factor of
#: metrics-off (ISSUE 5 — "at most one attribute check when disabled,
#: <=5% with counters on").
COUNTERS_TARGET = 1.05

#: Acceptance target for the full causal mode: counters + tracing +
#: causal-edge recording within 10% of metrics-off (causal observability
#: ISSUE — "all-in telemetry stays within 1.10x").
CAUSAL_TARGET = 1.10

MODES = ("off", "counters", "trace", "causal")


def _run_shuffle(mode: str, total_bytes: int,
                 trace_out: "str | None" = None) -> dict:
    """One 1:8 batched 64 B shuffle; ``mode`` selects the obs plane state."""
    target_nodes = 8
    tuple_size = 64
    cluster = Cluster(node_count=1 + target_nodes)
    if mode == "counters":
        cluster.enable_observability()
    elif mode == "trace":
        cluster.enable_observability(trace=True)
    elif mode == "causal":
        cluster.enable_observability(trace=True, causal=True)
    dfi = DfiRuntime(cluster)
    schema = Schema(("key", "uint64"), ("pad", tuple_size - 8))
    dfi.init_shuffle_flow(
        "bench", [Endpoint(0, 0)],
        [Endpoint(1 + n, 0) for n in range(target_nodes)],
        schema, shuffle_key="key", options=FlowOptions())
    count = total_bytes // tuple_size
    pad = b"x" * (tuple_size - 8)
    window = {"start": None, "end": 0.0}
    consumed = [0]

    def source_thread():
        source = yield from dfi.open_source("bench", 0)
        window["start"] = cluster.now
        pushed = 0
        while pushed < count:
            n = min(1024, count - pushed)
            batch = [(i, pad) for i in range(pushed, pushed + n)]
            yield from source.push_batch(batch)
            pushed += n
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("bench", index)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                window["end"] = max(window["end"], cluster.now)
                return
            consumed[0] += len(batch)

    cluster.env.process(source_thread())
    for n in range(target_nodes):
        cluster.env.process(target_thread(n))
    # GC off during the timed region: collection pauses triggered by the
    # *previous* run's garbage would otherwise bill one mode for another
    # mode's allocations (order-of-2% noise on this measurement).
    gc.collect()
    gc.disable()
    try:
        wall_start = time.perf_counter()
        cluster.run()
        wall = time.perf_counter() - wall_start
    finally:
        gc.enable()
    assert consumed[0] == count, consumed[0]
    entry = {
        "mode": mode,
        "tuple_size": tuple_size,
        "tuples": count,
        "wall_seconds": wall,
        "tuples_per_sec": count / wall,
        "simulated_elapsed_ns": window["end"] - window["start"],
    }
    if mode != "off":
        # The registry must agree exactly with the ground truth the
        # bench already knows — telemetry and bench output can never
        # disagree (satellite contract).
        snapshot = cluster.metrics_snapshot()["nodes"]
        pushed = snapshot[0]["counters"]["core.tuples_pushed"]
        assert pushed == count, (pushed, count)
        drained = sum(snapshot[n]["counters"]["core.tuples_consumed"]
                      for n in range(1, 1 + target_nodes))
        assert drained == count, (drained, count)
        entry["registry_tuples_pushed"] = pushed
        entry["registry_tuples_consumed"] = drained
    if mode in ("trace", "causal"):
        entry["trace_events"] = sum(
            tracer.emitted for tracer in cluster.obs.tracers.values())
        if mode == "causal":
            recorder = cluster.obs.causal
            entry["causal_edges"] = sum(
                log.next for log in recorder.logs.values())
        if trace_out:
            from repro.obs import export_chrome_trace
            export_chrome_trace(cluster, trace_out)
    return entry


def run_all(total_bytes: int, trace_out: "str | None" = None) -> dict:
    results = {"bench": "obs_overhead", "total_bytes": total_bytes,
               "reps": REPS, "counters_target": COUNTERS_TARGET,
               "causal_target": CAUSAL_TARGET,
               "scenarios": []}
    # Warm the interpreter on a small run of each mode before timing.
    warm = min(total_bytes, 256 << 10)
    for mode in MODES:
        _run_shuffle(mode, warm)
    # Interleave reps round-robin rather than running each mode's reps
    # back-to-back: host speed drifts on a seconds timescale (frequency
    # scaling, thermal state, noisy neighbours), and the order within a
    # round rotates so no mode systematically inherits the allocator and
    # cache state of another. Each mode reports its best (minimum-wall)
    # run, the timeit convention: scheduling noise on a shared host only
    # ever *adds* time, so the minimum over enough reps is the robust
    # estimator of a mode's true cost, and the overhead ratio compares
    # the minima. (Mean- or median-of-ratio estimators were tried first
    # and drowned: their spread across identical back-to-back bench
    # invocations exceeded the 5% effect being measured.)
    runs: dict = {}
    for rep_index in range(REPS):
        rotation = rep_index % len(MODES)
        for mode in MODES[rotation:] + MODES[:rotation]:
            rep = _run_shuffle(
                mode, total_bytes,
                trace_out if mode == "causal" and rep_index == 0 else None)
            best = runs.get(mode)
            if best is None:
                runs[mode] = rep
            else:
                assert (rep["simulated_elapsed_ns"]
                        == best["simulated_elapsed_ns"]), (
                    mode, rep["simulated_elapsed_ns"],
                    best["simulated_elapsed_ns"])
                if rep["wall_seconds"] < best["wall_seconds"]:
                    runs[mode] = rep
    for mode in MODES:
        runs[mode]["reps"] = REPS
    # Determinism: the simulated timeline must not move when telemetry
    # is recorded (the fingerprint harness proves this across all bench
    # families; this is the in-run assert for the measured scenario).
    sim = {runs[mode]["simulated_elapsed_ns"] for mode in MODES}
    assert len(sim) == 1, runs
    off = runs["off"]["wall_seconds"]
    for mode in MODES:
        entry = runs[mode]
        entry["overhead_vs_off"] = entry["wall_seconds"] / off
        results["scenarios"].append(entry)
        note = ""
        if mode == "counters":
            ok = entry["overhead_vs_off"] <= COUNTERS_TARGET
            note = ("  [<=5% target met]" if ok
                    else f"  [ABOVE {COUNTERS_TARGET:.2f}x target]")
        elif mode == "causal":
            ok = entry["overhead_vs_off"] <= CAUSAL_TARGET
            note = ("  [<=10% target met]" if ok
                    else f"  [ABOVE {CAUSAL_TARGET:.2f}x target]")
        print(f"obs-overhead 64B batched 1:8 {mode:>8}: "
              f"{entry['tuples_per_sec']:12.0f} tuples/s wall, "
              f"{entry['overhead_vs_off']:5.3f}x vs off{note}")
    return results


def check_against(committed_path: str, fresh: dict) -> None:
    """Report-only check of a fresh run against a committed JSON: flags
    overhead-ratio drift beyond +-20% and counters-target misses."""
    with open(committed_path) as fh:
        committed = json.load(fh)
    baseline = {entry["mode"]: entry
                for entry in committed.get("scenarios", [])}
    print(f"\n--- obs-overhead check vs {committed_path} (report-only) ---")
    for entry in fresh["scenarios"]:
        ref = baseline.get(entry["mode"])
        if ref is None:
            print(f"{entry['mode']:>8}: NEW (no committed baseline)")
            continue
        drift = entry["overhead_vs_off"] / ref["overhead_vs_off"]
        verdict = "ok" if 0.8 <= drift <= 1.2 else "DRIFT?"
        print(f"{entry['mode']:>8}: overhead {entry['overhead_vs_off']:.3f}x "
              f"(committed {ref['overhead_vs_off']:.3f}x)  [{verdict}]")
    counters = next((e for e in fresh["scenarios"]
                     if e["mode"] == "counters"), None)
    if counters is not None and counters["overhead_vs_off"] > COUNTERS_TARGET:
        print(f"counters-on overhead {counters['overhead_vs_off']:.3f}x "
              f"exceeds the {COUNTERS_TARGET:.2f}x target (informational; "
              f"host speed varies across runners)")
    causal = next((e for e in fresh["scenarios"]
                   if e["mode"] == "causal"), None)
    if causal is not None and causal["overhead_vs_off"] > CAUSAL_TARGET:
        print(f"causal-on overhead {causal['overhead_vs_off']:.3f}x "
              f"exceeds the {CAUSAL_TARGET:.2f}x target (informational; "
              f"host speed varies across runners)")
    print("--- end obs-overhead check ---")


def main() -> None:
    total_bytes = int(os.environ.get("BENCH_OBS_BYTES", 4 << 20))
    args = sys.argv[1:]
    check_path = None
    trace_out = None
    if "--trace-out" in args:
        i = args.index("--trace-out")
        trace_out = args[i + 1]
        args = args[:i] + args[i + 2:]
    if args and args[0] == "--check":
        check_path = args[1] if len(args) > 1 else OUTPUT
        args = args[2:]
    results = run_all(total_bytes, trace_out)
    if trace_out:
        print(f"wrote {trace_out}")
    if check_path is not None:
        check_against(check_path, results)
        return  # report-only: never rewrites the committed JSON
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    maybe_profiled(main)
