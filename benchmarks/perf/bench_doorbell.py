"""Wall-clock microbench of doorbell batching and event-train coalescing.

The push/consume benches measure whole flows; this bench isolates the
doorbell-train machinery this PR added:

* raw QP posting rate — ``post_write_batch`` (one doorbell, one kernel
  train) vs. a loop of ``post_write`` calls (one doorbell each). The
  simulated timeline must be bit-identical between the two modes; only
  the wall-clock cost may differ.
* 1:1 bandwidth shuffle — the segment-train source path (windowed
  writability proof + deferred doorbells) under ``push_batch`` and
  ``push_bytes``, with a ``push`` per-tuple reference point.
* 1:2 naive replicate — batched pushes fan whole segment trains through
  ``FooterRingWriter.write_segments``.

Run with::

    PYTHONPATH=src python benchmarks/perf/bench_doorbell.py [--profile]

Emits ``benchmarks/perf/BENCH_doorbell.json`` with tuples/sec (for the
raw QP scenarios: writes/sec) per scenario plus the simulated elapsed ns
(determinism guard — must not change when the hot path gets faster).

``--check <committed.json>`` re-compares a fresh run against a committed
baseline JSON and reports per-scenario deviation (report-only: the exit
code is always 0; CI uses it as a regression tripwire, not a gate).
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from profutil import maybe_profiled  # noqa: E402

from repro.core import (  # noqa: E402
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Schema,
)
from repro.rdma import get_nic  # noqa: E402
from repro.simnet import Cluster  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "BENCH_doorbell.json")

#: Number of timed repetitions per scenario; the best (max tuples/s) is
#: reported, standard microbench practice to shed scheduler noise.
REPS = int(os.environ.get("BENCH_DOORBELL_REPS", 3))

#: The acceptance bar for this PR lives in ``bench_push_path.py`` (64 B
#: batched shuffle >= 1.5x the committed pre-train number); this constant
#: pins the committed pre-train batched rate for context when reading
#: this bench's shuffle scenarios.
RECORDED_PRE_TRAIN_BATCHED = {"tuple_size": 64, "tuples_per_sec": 852371}


def _schema(tuple_size: int) -> Schema:
    if tuple_size <= 8:
        return Schema(("key", "uint64"))
    return Schema(("key", "uint64"), ("pad", tuple_size - 8))


def _run_qp(total_bytes: int, mode: str) -> dict:
    """Raw QP posting rate: trains of 16 x 8 KiB writes, last one
    signaled, waiting on the signaled completion between trains.

    ``train`` posts each train with one ``post_write_batch`` call (one
    doorbell, one coalesced kernel event train); ``sequential`` posts the
    same writes with 16 ``post_write`` calls. Commit and ack times are
    bit-identical by construction — ``run_all`` asserts it.
    """
    write_size = 8192
    train_len = 16
    cluster = Cluster(node_count=2)
    # The registry is the tally (see bench_push_path.py): bench output
    # and the telemetry plane can never disagree.
    cluster.enable_observability()
    nic0 = get_nic(cluster.node(0))
    nic1 = get_nic(cluster.node(1))
    remote = nic1.register_memory(write_size * train_len)
    qp = nic0.create_qp(cluster.node(1))
    rounds = max(1, total_bytes // (write_size * train_len))
    payload = b"\xab" * write_size
    window = {"start": None, "end": 0.0}

    def sender(env):
        window["start"] = env.now
        rkey = remote.rkey
        for _ in range(rounds):
            if mode == "train":
                wrs = qp.post_write_batch(
                    [(payload, rkey, i * write_size, i == train_len - 1)
                     for i in range(train_len)],
                    assume_stable=True)
                last = wrs[-1]
            else:
                for i in range(train_len - 1):
                    qp.post_write(payload, rkey, i * write_size,
                                  signaled=False, assume_stable=True)
                last = qp.post_write(payload, rkey,
                                     (train_len - 1) * write_size,
                                     signaled=True, assume_stable=True)
            if not last.done.triggered:
                yield last.done
            qp.send_cq.poll(max_entries=train_len)
        window["end"] = env.now

    cluster.env.process(sender(cluster.env))
    wall_start = time.perf_counter()
    cluster.run()
    wall = time.perf_counter() - wall_start
    writes = cluster.node(0).metrics.get("rdma.wqes_posted")
    assert writes == rounds * train_len, (writes, rounds * train_len)
    return {
        "scenario": f"qp-16x8KiB-{mode}",
        "tuple_size": write_size,
        "tuples": writes,
        "mode": mode,
        "wall_seconds": wall,
        "tuples_per_sec": writes / wall,
        "simulated_elapsed_ns": window["end"] - window["start"],
    }


def _run_push(tuple_size: int, total_bytes: int, mode: str) -> dict:
    """1:1 bandwidth shuffle with the consume side on its fastest drain
    (``consume_bytes``), so the push-side doorbell-train path dominates.

    * ``per-tuple`` — one ``push`` per tuple (no trains; reference);
    * ``batched``   — ``push_batch`` in 1024-tuple chunks (full-segment
      flushes ride the train/window machinery);
    * ``bytes``     — ``push_bytes`` of one pre-packed slab (maximal
      multi-segment trains).
    """
    cluster = Cluster(node_count=2)
    cluster.enable_observability()
    dfi = DfiRuntime(cluster)
    schema = _schema(tuple_size)
    dfi.init_shuffle_flow("bell", [Endpoint(0, 0)], [Endpoint(1, 0)],
                          schema, shuffle_key="key", options=FlowOptions())
    count = total_bytes // tuple_size
    pad = b"x" * (tuple_size - 8)
    slab = (memoryview(b"".join(schema.pack((i, pad)) for i in range(count)))
            if mode == "bytes" else None)
    consumed = [0]
    window = {"start": None, "end": 0.0}

    def source_thread():
        source = yield from dfi.open_source("bell", 0)
        window["start"] = cluster.now
        if mode == "bytes":
            yield from source.push_bytes(slab, target=0)
        elif mode == "batched":
            pushed = 0
            while pushed < count:
                n = min(1024, count - pushed)
                batch = [(i, pad) for i in range(pushed, pushed + n)]
                yield from source.push_batch(batch, target=0)
                pushed += n
        else:
            for i in range(count):
                yield from source.push((i, pad))
        yield from source.close()

    def target_thread():
        target = yield from dfi.open_target("bell", 0)
        while True:
            chunks = yield from target.consume_bytes()
            if chunks is FLOW_END:
                break
            for chunk in chunks:
                consumed[0] += len(chunk) // tuple_size
        window["end"] = cluster.now

    cluster.env.process(source_thread())
    cluster.env.process(target_thread())
    wall_start = time.perf_counter()
    cluster.run()
    wall = time.perf_counter() - wall_start
    assert consumed[0] == count, consumed[0]
    pushed = cluster.node(0).metrics.get("core.tuples_pushed")
    assert pushed == count, (pushed, count)
    return {
        "scenario": f"push-1to1-{tuple_size}B-{mode}",
        "tuple_size": tuple_size,
        "tuples": pushed,
        "mode": mode,
        "wall_seconds": wall,
        "tuples_per_sec": count / wall,
        "simulated_elapsed_ns": window["end"] - window["start"],
    }


def _run_replicate(tuple_size: int, total_bytes: int) -> dict:
    """1:2 naive replicate, batched pushes: every full staging segment
    fans out through ``FooterRingWriter.write_segments`` trains."""
    target_nodes = 2
    cluster = Cluster(node_count=1 + target_nodes)
    cluster.enable_observability()
    dfi = DfiRuntime(cluster)
    schema = _schema(tuple_size)
    dfi.init_replicate_flow(
        "rep", [Endpoint(0, 0)],
        [Endpoint(1 + n, 0) for n in range(target_nodes)], schema,
        options=FlowOptions())
    count = total_bytes // tuple_size
    pad = b"x" * (tuple_size - 8)
    received = [0]
    window = {"start": None, "end": 0.0}

    def source_thread():
        source = yield from dfi.open_source("rep", 0)
        window["start"] = cluster.now
        pushed = 0
        while pushed < count:
            n = min(1024, count - pushed)
            batch = [(i, pad) for i in range(pushed, pushed + n)]
            yield from source.push_batch(batch)
            pushed += n
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("rep", index)
        while True:
            chunks = yield from target.consume_bytes()
            if chunks is FLOW_END:
                break
            for chunk in chunks:
                received[0] += len(chunk) // tuple_size
        window["end"] = max(window["end"], cluster.now)

    cluster.env.process(source_thread())
    for n in range(target_nodes):
        cluster.env.process(target_thread(n))
    wall_start = time.perf_counter()
    cluster.run()
    wall = time.perf_counter() - wall_start
    assert received[0] == count * target_nodes, received[0]
    delivered = sum(
        cluster.node(1 + n).metrics.get("core.tuples_consumed")
        for n in range(target_nodes))
    assert delivered == received[0], (delivered, received[0])
    return {
        "scenario": f"replicate-1to{target_nodes}-{tuple_size}B-batched",
        "tuple_size": tuple_size,
        "tuples": delivered,
        "mode": "batched",
        "wall_seconds": wall,
        "tuples_per_sec": received[0] / wall,
        "simulated_elapsed_ns": window["end"] - window["start"],
    }


def _best_of(fn, *args) -> dict:
    """Run a scenario ``REPS`` times, report the best wall-clock rep.

    Simulated metrics must be bit-identical across reps (the simulator is
    deterministic); any divergence is a correctness bug, so it asserts.
    """
    best = fn(*args)
    for _ in range(REPS - 1):
        rep = fn(*args)
        assert rep["simulated_elapsed_ns"] == best["simulated_elapsed_ns"], (
            rep["scenario"], rep["simulated_elapsed_ns"],
            best["simulated_elapsed_ns"])
        if rep["tuples_per_sec"] > best["tuples_per_sec"]:
            best = rep
    best["reps"] = REPS
    return best


def run_all(total_bytes: int) -> dict:
    results = {"bench": "doorbell", "total_bytes": total_bytes,
               "reps": REPS, "scenarios": [],
               "recorded_pre_train_batched": RECORDED_PRE_TRAIN_BATCHED}
    # Warm the interpreter (imports, bytecode, struct caches, allocator)
    # on a small run of each path before anything is timed.
    warm_bytes = min(total_bytes, 256 << 10)
    _run_qp(warm_bytes, "train")
    for mode in ("per-tuple", "batched", "bytes"):
        _run_push(64, warm_bytes, mode)
    _run_replicate(256, warm_bytes)
    seq = _best_of(_run_qp, total_bytes, "sequential")
    train = _best_of(_run_qp, total_bytes, "train")
    # The core equivalence claim: a train is a wall-clock optimization
    # only — commit/ack times match back-to-back posts bit-for-bit.
    assert (train["simulated_elapsed_ns"]
            == seq["simulated_elapsed_ns"]), (
        train["simulated_elapsed_ns"], seq["simulated_elapsed_ns"])
    runs = [seq, train,
            _best_of(_run_push, 64, total_bytes, "per-tuple"),
            _best_of(_run_push, 64, total_bytes, "batched"),
            _best_of(_run_push, 64, total_bytes, "bytes"),
            _best_of(_run_push, 256, total_bytes, "batched"),
            _best_of(_run_replicate, 256, total_bytes)]
    per_tuple = runs[2]["tuples_per_sec"]
    for entry in runs:
        if (entry["scenario"].startswith("push-")
                and entry["mode"] != "per-tuple"
                and entry["tuple_size"] == 64):
            entry["speedup_vs_per_tuple"] = (
                entry["tuples_per_sec"] / per_tuple)
        if entry["scenario"] == "qp-16x8KiB-train":
            entry["speedup_vs_sequential"] = (
                entry["tuples_per_sec"] / seq["tuples_per_sec"])
        results["scenarios"].append(entry)
        extra = ""
        if entry.get("speedup_vs_per_tuple"):
            extra = f"  ({entry['speedup_vs_per_tuple']:4.2f}x vs per-tuple)"
        if entry.get("speedup_vs_sequential"):
            extra = (f"  ({entry['speedup_vs_sequential']:4.2f}x vs "
                     f"sequential)")
        print(f"{entry['scenario']:>32}: "
              f"{entry['tuples_per_sec']:12.0f} tuples/s wall, "
              f"sim {entry['simulated_elapsed_ns']:14.2f} ns{extra}")
    return results


def check_against(committed_path: str, fresh: dict) -> None:
    """Report-only regression check: warn when a fresh run's tuples/s
    falls outside a +-20% band around the committed numbers."""
    with open(committed_path) as fh:
        committed = json.load(fh)
    baseline = {entry["scenario"]: entry
                for entry in committed.get("scenarios", [])}
    print(f"\n--- regression check vs {committed_path} (+-20% band, "
          f"report-only) ---")
    for entry in fresh["scenarios"]:
        name = entry["scenario"]
        ref = baseline.get(name)
        if ref is None:
            print(f"{name:>32}: NEW (no committed baseline)")
            continue
        ratio = entry["tuples_per_sec"] / ref["tuples_per_sec"]
        verdict = "ok" if 0.8 <= ratio else "REGRESSION?"
        if ratio > 1.2:
            verdict = "faster"
        print(f"{name:>32}: {ratio:5.2f}x committed  [{verdict}]")
    print("--- end regression check (informational; host speed varies "
          "across runners) ---")


def main() -> None:
    total_bytes = int(os.environ.get("BENCH_DOORBELL_BYTES", 4 << 20))
    args = sys.argv[1:]
    check_path = None
    if args and args[0] == "--check":
        check_path = args[1] if len(args) > 1 else OUTPUT
        args = args[2:]
    results = run_all(total_bytes)
    if check_path is not None:
        check_against(check_path, results)
        return  # report-only: never rewrites the committed JSON
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    maybe_profiled(main)
