"""Farm independent simulator runs across host cores.

Two suites, both built on :mod:`repro.bench.parallel`:

* ``chaos`` — the 5-seed x 3-flow-type x 2-mode x {plain, congested}
  chaos matrix, every cell run twice in its own process; the merged
  report asserts the no-hang and bit-reproducibility invariants per seed
  and exits non-zero on any violation. Congested cells run the same
  fault plans with an active congestion plane (tight ECN band + DCQCN)
  so throttling composes with crashes, outages, and degrades. Pure
  simulated-time work: parallelism changes nothing but wall clock.
* ``perf``  — the standalone hot-path bench scripts, one subprocess
  each. With ``--check`` every script that has a committed baseline is
  compared against it (report-only, same contract as running them by
  hand). Wall-clock numbers from concurrent benches share cores — use
  ``--processes 1`` when the tuples/s matter, the parallel mode when
  only the determinism guards and ±20% drift checks do.

Run with::

    PYTHONPATH=src python benchmarks/perf/run_parallel.py chaos
    PYTHONPATH=src python benchmarks/perf/run_parallel.py perf --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from repro.bench.parallel import (  # noqa: E402
    chaos_cases,
    fan_out,
    run_bench_script,
    run_chaos_case,
)

HERE = os.path.dirname(os.path.abspath(__file__))

#: Perf-suite scripts and the committed baseline each ``--check`` run
#: compares against (``None``: the script has no --check mode).
PERF_SCRIPTS = (
    ("bench_push_path.py", None),
    ("bench_consume_path.py", "BENCH_consume_path.json"),
    ("bench_doorbell.py", "BENCH_doorbell.json"),
    ("bench_kernel.py", "BENCH_kernel.json"),
    ("bench_columnar.py", "BENCH_columnar.json"),
    ("bench_obs_overhead.py", "BENCH_obs.json"),
    ("bench_congestion.py", "BENCH_congestion.json"),
)


def _run_chaos(args) -> int:
    seeds = range(args.seeds)
    cases = chaos_cases(seeds=seeds)
    start = time.perf_counter()
    results = fan_out(run_chaos_case, cases, processes=args.processes)
    wall = time.perf_counter() - start
    bad = [r for r in results
           if not (r["legible"] and r["deterministic"])]
    report = {
        "suite": "chaos",
        "cases": len(results),
        "wall_seconds": wall,
        "violations": len(bad),
        "results": results,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
    for r in results:
        tally: dict = {}
        for outcome in r["outcomes"].values():
            tally[outcome] = tally.get(outcome, 0) + 1
        flags = "" if r["legible"] and r["deterministic"] else "  <-- FAIL"
        cc = " cc" if r["congested"] else "   "
        print(f"chaos seed={r['seed']} flow={r['flow']:<9} "
              f"mode={r['mode']}{cc} {tally}{flags}")
    print(f"chaos matrix: {len(results)} cells x 2 runs in {wall:.1f}s "
          f"({len(bad)} violations)")
    return 1 if bad else 0


def _run_perf(args) -> int:
    cases = []
    for script, baseline in PERF_SCRIPTS:
        path = os.path.join(HERE, script)
        if not os.path.exists(path):
            continue
        argv = (["--check", os.path.join(HERE, baseline)]
                if args.check and baseline else [])
        cases.append((path, argv, {"PYTHONPATH": os.path.join(
            HERE, os.pardir, os.pardir, "src")}))
    start = time.perf_counter()
    results = fan_out(run_bench_script, cases, processes=args.processes)
    wall = time.perf_counter() - start
    failed = [r for r in results if r["returncode"] != 0]
    for r in results:
        status = "ok" if r["returncode"] == 0 else f"EXIT {r['returncode']}"
        print(f"perf {r['script']:<28} {status}")
        for line in r["output_tail"][-4:]:
            print(f"    {line}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"suite": "perf", "wall_seconds": wall,
                       "results": results}, fh, indent=2)
    print(f"perf suite: {len(results)} benches in {wall:.1f}s "
          f"({len(failed)} failed)")
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("suite", choices=("chaos", "perf"))
    parser.add_argument("--processes", type=int, default=None,
                        help="worker count (default: one per case, "
                             "capped at host cores)")
    parser.add_argument("--seeds", type=int, default=5,
                        help="chaos suite: sweep seeds 0..N-1 (default 5)")
    parser.add_argument("--check", action="store_true",
                        help="perf suite: compare against committed "
                             "BENCH_*.json baselines")
    parser.add_argument("--json", metavar="PATH",
                        help="write the merged report as JSON")
    args = parser.parse_args(argv)
    if args.suite == "chaos":
        return _run_chaos(args)
    return _run_perf(args)


if __name__ == "__main__":
    raise SystemExit(main())
