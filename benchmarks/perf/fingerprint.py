"""Simulated-time fingerprint of the figure benches.

Prints the *exact* (repr, full float precision) simulated metrics of a
representative slice of every figure-bench family. Performance work on
the simulator must leave this fingerprint bit-identical: the hot path may
get faster in wall-clock terms, but the simulated GiB/s and RTTs are the
paper reproduction and must not move.

Run with::

    PYTHONPATH=src python benchmarks/perf/fingerprint.py [output.json]

and diff the JSON against a pre-change capture. Every ``--check*`` mode
reports drifted keys as a per-metric unified diff (one element per line
for tuple-valued metrics) and exits 1 on any drift, 0 when clean.

``--check-fault-neutral`` runs the whole fingerprint twice — once bare,
once with an *empty* ``FaultPlan`` installed on every cluster — and
fails (exit 1) on any difference: the fault plane must be exactly free
when no faults are scheduled.

``--check <baseline.json>`` collects a fresh fingerprint and compares it
bit-exactly against a previously captured JSON: any drift on a key the
baseline knows fails (exit 1); keys only the fresh run has are reported
as new (coverage growth, not drift).

``--check-congestion-neutral`` runs the fingerprint twice — once bare,
once with an *unbounded* ``CongestionConfig`` installed on every cluster
— and fails (exit 1) on any difference: a congestion plane whose
thresholds never trip must add zero delay, mark nothing, and schedule no
events (the ``congestion=None`` default is stronger still — the plane is
never even consulted).

``--with-obs`` runs the whole fingerprint three times — bare, with the
observability plane (counters, tracing **and** causal-edge recording)
enabled on every cluster, and with observability plus an empty
``FaultPlan`` — and fails (exit 1) on any difference: recording
telemetry must never move simulated time (the ``repro.obs`` determinism
contract, see docs/observability.md).
"""

from __future__ import annotations

import difflib
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from repro.bench.flows import (  # noqa: E402
    measure_combiner_bandwidth,
    measure_replicate_bandwidth,
    measure_replicate_rtt,
    measure_scaleout_bandwidth,
    measure_shuffle_bandwidth,
    measure_shuffle_rtt,
)
from repro.core import (  # noqa: E402
    FLOW_END,
    AggregationSpec,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Optimization,
    Schema,
)
from repro.simnet import Cluster  # noqa: E402


def _combiner_step_fingerprint() -> tuple:
    """N:1 combiner drained with ``consume_step`` (the incremental consume
    path): exact finish time plus an order-independent aggregate checksum."""
    cluster = Cluster(node_count=5)
    dfi = DfiRuntime(cluster)
    schema = Schema(("group", "uint64"), ("value", "uint64"))
    dfi.init_combiner_flow(
        "fp-agg", [Endpoint(1 + n, 0) for n in range(4)], Endpoint(0, 0),
        schema, aggregation=AggregationSpec("sum", "group", "value"),
        options=FlowOptions(source_segments=4, target_segments=16,
                            credit_threshold=8))
    out = {}

    def source_thread(index):
        source = yield from dfi.open_source("fp-agg", index)
        for i in range(2000):
            yield from source.push((i % 32, i))
        yield from source.close()

    def target_thread():
        target = yield from dfi.open_target("fp-agg")
        while (yield from target.consume_step()) is not FLOW_END:
            pass
        out["aggregates"] = dict(target.aggregates)
        out["tuples"] = target.tuples_aggregated

    for index in range(4):
        cluster.env.process(source_thread(index))
    cluster.env.process(target_thread())
    cluster.run()
    checksum = sum(group * 31 + value
                   for group, value in sorted(out["aggregates"].items()))
    return cluster.now, out["tuples"], checksum


def _train_shuffle_fingerprint() -> tuple:
    """1:1 bandwidth shuffle pushed in 1024-tuple batches: full-segment
    flushes ride the doorbell-train path (windowed writability proof,
    deferred doorbells, ``post_write_batch``). Exact finish time plus the
    delivered tuple count pin the train timeline."""
    cluster = Cluster(node_count=2)
    dfi = DfiRuntime(cluster)
    schema = Schema(("key", "uint64"), ("pad", 56))
    dfi.init_shuffle_flow("fp-train", [Endpoint(0, 0)], [Endpoint(1, 0)],
                          schema, shuffle_key="key", options=FlowOptions())
    count = (256 << 10) // schema.tuple_size
    pad = b"x" * 56
    consumed = [0]

    def source_thread():
        source = yield from dfi.open_source("fp-train", 0)
        pushed = 0
        while pushed < count:
            n = min(1024, count - pushed)
            yield from source.push_batch(
                [(i, pad) for i in range(pushed, pushed + n)], target=0)
            pushed += n
        yield from source.close()

    def target_thread():
        target = yield from dfi.open_target("fp-train", 0)
        while True:
            batch = yield from target.consume_batch()
            if batch is FLOW_END:
                break
            consumed[0] += len(batch)

    cluster.env.process(source_thread())
    cluster.env.process(target_thread())
    cluster.run()
    return cluster.now, consumed[0]


def _train_replicate_fingerprint() -> tuple:
    """1:2 naive replicate pushed in batches: whole segment trains fan
    out through ``FooterRingWriter.write_segments`` with one doorbell per
    windowed chunk."""
    cluster = Cluster(node_count=3)
    dfi = DfiRuntime(cluster)
    schema = Schema(("key", "uint64"), ("pad", 248))
    dfi.init_replicate_flow(
        "fp-rep", [Endpoint(0, 0)], [Endpoint(1, 0), Endpoint(2, 0)],
        schema, options=FlowOptions())
    count = (128 << 10) // schema.tuple_size
    pad = b"x" * 248
    received = [0]

    def source_thread():
        source = yield from dfi.open_source("fp-rep", 0)
        pushed = 0
        while pushed < count:
            n = min(1024, count - pushed)
            yield from source.push_batch(
                [(i, pad) for i in range(pushed, pushed + n)])
            pushed += n
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("fp-rep", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                break
            received[0] += 1

    cluster.env.process(source_thread())
    for index in range(2):
        cluster.env.process(target_thread(index))
    cluster.run()
    return cluster.now, received[0]


def collect() -> dict:
    fp = {}
    for tuple_size, threads in ((64, 1), (256, 2)):
        m = measure_shuffle_bandwidth(tuple_size, threads,
                                      total_bytes=1 << 20)
        fp[f"shuffle_bw_{tuple_size}B_{threads}src"] = m.elapsed_ns
    m = measure_shuffle_bandwidth(
        64, 1, total_bytes=1 << 20, optimization=Optimization.LATENCY,
        options=FlowOptions(target_segments=64, credit_threshold=16))
    fp["shuffle_lat_64B_1src"] = m.elapsed_ns
    fp["shuffle_rtt_64B_4srv"] = measure_shuffle_rtt(64, 4, iterations=50)
    m = measure_scaleout_bandwidth(4, 2, bytes_per_source=256 << 10)
    fp["scaleout_4x2"] = m.elapsed_ns
    for multicast in (False, True):
        m = measure_replicate_bandwidth(256, 1, multicast,
                                        total_bytes=512 << 10)
        fp[f"replicate_{'mc' if multicast else 'naive'}_256B"] = m.elapsed_ns
        fp[f"replicate_{'mc' if multicast else 'naive'}_rtt"] = (
            measure_replicate_rtt(64, 3, multicast, iterations=30))
    m = measure_combiner_bandwidth(16, 1, total_bytes=512 << 10)
    fp["combiner_16B"] = m.elapsed_ns
    # Consume-path scenarios (PR 2): N:1 flows stress the target-side
    # drain loop — many channels funneling into one consume_batch loop.
    m = measure_shuffle_bandwidth(64, 8, target_nodes=1,
                                  total_bytes=1 << 20)
    fp["consume_nto1_64B_8src"] = m.elapsed_ns
    m = measure_shuffle_bandwidth(
        64, 4, target_nodes=1, total_bytes=128 << 10,
        optimization=Optimization.LATENCY,
        options=FlowOptions(target_segments=64, credit_threshold=16))
    fp["consume_nto1_lat_64B_4src"] = m.elapsed_ns
    fp["consume_combiner_step_4src"] = _combiner_step_fingerprint()
    # Doorbell-train scenarios (this PR): batched pushes route full
    # segments through deferred-doorbell trains and windowed proofs.
    fp["train_shuffle_64B_1src"] = _train_shuffle_fingerprint()
    fp["train_replicate_256B_1to2"] = _train_replicate_fingerprint()
    return fp


def _render(value) -> list:
    """One repr line per element for sequences, so a drifted tuple metric
    pins the exact drifted component in the diff instead of one long line."""
    if isinstance(value, (tuple, list)):
        return [f"  {item!r}" for item in value]
    return [f"  {value!r}"]


def _diff_metrics(header: str, expected: dict, got: dict,
                  expected_name: str, got_name: str) -> bool:
    """Print a per-metric unified diff of every drifted key.

    Returns True when anything drifted (the caller's failure signal);
    prints nothing and returns False when the two captures agree on every
    key of ``expected``.
    """
    drifted = [key for key in expected if expected[key] != got.get(key)]
    if not drifted:
        return False
    print(header)
    for key in drifted:
        expected_lines = [f"{key}:"] + _render(expected[key])
        got_lines = [f"{key}:"] + _render(got.get(key))
        for line in difflib.unified_diff(expected_lines, got_lines,
                                         fromfile=expected_name,
                                         tofile=got_name, lineterm=""):
            print(f"  {line}")
    return True


def check_fault_neutral() -> int:
    """Assert an empty fault plan leaves the fingerprint bit-identical."""
    from repro.simnet import FaultPlan, faults

    bare = collect()
    faults.set_default_plan(FaultPlan())
    try:
        with_plane = collect()
    finally:
        faults.set_default_plan(None)

    if _diff_metrics("FAULT-NEUTRALITY VIOLATION: empty fault plane moved "
                     "simulated metrics:",
                     bare, with_plane, "bare", "with-fault-plane"):
        return 1
    print(f"fault-neutral: {len(bare)} metrics bit-identical with an "
          f"empty fault plane installed")
    return 0


def check_congestion_neutral() -> int:
    """Assert an installed-but-unbounded congestion plane leaves the
    fingerprint bit-identical: every threshold sits at infinity, so the
    plane's admission arithmetic must add exactly zero delay, mark
    nothing, and schedule no CNP/recovery events. ``congestion=None``
    neutrality is stronger still (the plane is never consulted) and is
    covered by the bare run this one is compared against."""
    from repro.simnet import congestion
    from repro.simnet.congestion import CongestionConfig

    bare = collect()
    congestion.set_default_config(CongestionConfig.unbounded())
    try:
        with_plane = collect()
    finally:
        congestion.set_default_config(None)

    if _diff_metrics("CONGESTION-NEUTRALITY VIOLATION: unbounded congestion "
                     "plane moved simulated metrics:",
                     bare, with_plane, "bare", "with-congestion-plane"):
        return 1
    print(f"congestion-neutral: {len(bare)} metrics bit-identical with an "
          f"unbounded congestion plane installed")
    return 0


def check_with_obs() -> int:
    """Assert counters + tracing + causal recording leave the fingerprint
    bit-identical, alone and stacked on top of an (empty) fault plane."""
    from repro import obs
    from repro.simnet import FaultPlan, faults

    bare = collect()
    obs.set_default_observability(True, trace=True, causal=True)
    try:
        with_obs = collect()
        faults.set_default_plan(FaultPlan())
        try:
            with_obs_faults = collect()
        finally:
            faults.set_default_plan(None)
    finally:
        obs.set_default_observability(False)

    status = 0
    for label, probe in (("counters+tracing+causal", with_obs),
                         ("counters+tracing+causal+fault-plane",
                          with_obs_faults)):
        if _diff_metrics(f"OBS-NEUTRALITY VIOLATION ({label}) moved "
                         f"simulated metrics:",
                         bare, probe, "bare", f"with-{label}"):
            status = 1
        else:
            print(f"obs-neutral ({label}): {len(bare)} metrics "
                  f"bit-identical")
    return status


def check_baseline(path: str) -> int:
    """Bit-exact compare a fresh fingerprint against a captured JSON."""
    with open(path) as fh:
        baseline = json.load(fh)
    # JSON round-trips tuples as lists; normalize the fresh capture the
    # same way so the comparison is representation-free.
    fresh = json.loads(json.dumps(collect()))
    for key in fresh:
        if key not in baseline:
            print(f"new metric (no baseline): {key}: {fresh[key]!r}")
    if _diff_metrics(f"FINGERPRINT DRIFT vs {path}:",
                     baseline, fresh, "baseline", "fresh"):
        return 1
    print(f"fingerprint: {len(baseline)} baseline metrics bit-identical "
          f"vs {path}")
    return 0


def main() -> None:
    args = sys.argv[1:]
    if "--check-fault-neutral" in args:
        sys.exit(check_fault_neutral())
    if "--check-congestion-neutral" in args:
        sys.exit(check_congestion_neutral())
    if "--with-obs" in args:
        sys.exit(check_with_obs())
    if args and args[0] == "--check":
        if len(args) < 2:
            print("usage: fingerprint.py --check <baseline.json>")
            sys.exit(2)
        sys.exit(check_baseline(args[1]))
    output = args[0] if args else None
    fp = collect()
    for key, value in fp.items():
        print(f"{key}: {value!r}")
    if output:
        with open(output, "w") as fh:
            json.dump(fp, fh, indent=2)
        print(f"wrote {output}")


if __name__ == "__main__":
    main()
