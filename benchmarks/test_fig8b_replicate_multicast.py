"""Fig. 8b — replicate flow with switch multicast (1:8): aggregated
receiver bandwidth.

Paper shape: replication happens in the switch, so the aggregate receive
bandwidth sails past the sender's 11.64 GiB/s link (up to ~64 GiB/s with
8 receivers); extra source threads do not help much.
"""

from repro.bench import Table, format_gib_s
from repro.bench.flows import measure_replicate_bandwidth
from repro.common.units import gbps_to_bytes_per_ns

TUPLE_SIZES = (64, 256, 1024)
SOURCE_THREADS = (1, 2, 4)
LINK = gbps_to_bytes_per_ns(100.0)


def run_sweep():
    results = {}
    for tuple_size in TUPLE_SIZES:
        for threads in SOURCE_THREADS:
            m = measure_replicate_bandwidth(
                tuple_size, threads, multicast=True, total_bytes=1 << 20)
            results[(tuple_size, threads)] = m.bytes_per_ns
    return results


def test_fig8b_replicate_multicast(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig8b",
                  "Replicate flow aggregated receiver BW (multicast, 1:8)",
                  ["tuple size", "1 source", "2 sources", "4 sources"])
    for tuple_size in TUPLE_SIZES:
        table.add_row(f"{tuple_size} B",
                      *(format_gib_s(results[(tuple_size, t)])
                        for t in SOURCE_THREADS))
    table.note("paper: beyond the sender link limit (up to ~64 GiB/s); "
               "more sender threads do not scale the multicast group")
    report(table)
    # Aggregate receive bandwidth exceeds the sender's link by far.
    assert results[(1024, 1)] > 3 * LINK
    assert results[(256, 1)] > 2 * LINK
