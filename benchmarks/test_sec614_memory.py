"""Section 6.1.4 — memory consumption of private per-channel buffers.

Paper numbers (default config: 32 segments x 8 KiB per ring):
  * 2 nodes, 4 source + 4 target threads each: 16 MiB per node;
  * 8 nodes, 4+4 threads: 64 MiB per node;
  * 8 nodes, 14+14 threads: 785.5 MiB per node;
  * halving the segments (16/ring) costs ~2.7% performance, quartering
    (8/ring) costs ~8%.
"""

from repro.bench import Table
from repro.bench.flows import flow_memory_per_node, measure_scaleout_bandwidth
from repro.core import FlowOptions

CONFIGS = ((2, 4), (8, 4), (8, 14))
PAPER_MIB = {(2, 4): 16.0, (8, 4): 64.0, (8, 14): 785.5}


def run_sweep():
    memory = {config: flow_memory_per_node(*config) for config in CONFIGS}
    # Segment-count ablation: throughput at 32 / 16 / 8 segments per ring.
    throughput = {}
    for segments in (32, 16, 8):
        options = FlowOptions(segment_size=4096, source_segments=segments,
                              target_segments=segments,
                              credit_threshold=min(8, segments // 2))
        m = measure_scaleout_bandwidth(8, 4, bytes_per_source=512 << 10,
                                       options=options)
        throughput[segments] = m.bytes_per_ns
    return memory, throughput


def test_sec614_memory(benchmark, report):
    memory, throughput = benchmark.pedantic(run_sweep, rounds=1,
                                            iterations=1)
    table = Table("sec614", "Buffer memory per node (N:N deployment)",
                  ["servers", "threads/server", "measured", "paper"])
    for config in CONFIGS:
        servers, threads = config
        table.add_row(servers, threads,
                      f"{memory[config] / (1 << 20):8.1f} MiB",
                      f"{PAPER_MIB[config]:8.1f} MiB")
    for segments in (16, 8):
        loss = (1 - throughput[segments] / throughput[32]) * 100
        table.note(f"{segments} segments/ring: {loss:+.1f}% bandwidth vs "
                   f"32 (paper: -2.7% at 16, -8% at 8)")
    report(table)
    # The accounting reproduces the paper's numbers almost exactly
    # (ours adds the 16-byte footers the paper's round numbers omit).
    for config in CONFIGS:
        measured_mib = memory[config] / (1 << 20)
        assert abs(measured_mib - PAPER_MIB[config]) / PAPER_MIB[config] \
            < 0.05
    # Shrinking rings costs only a few percent of bandwidth.
    assert throughput[16] > 0.85 * throughput[32]
    assert throughput[8] > 0.75 * throughput[32]
