"""Ablation — the tuple sequencer's cost (paper Sections 5.4 / 6.3.2):
global ordering stamps every segment with an RDMA fetch-and-add on a
remote counter, adding one round trip before each send.

Expected: an ordered replicate flow's per-tuple latency exceeds the
unordered flow's by roughly the sequencer round trip — the effect that
makes NOPaxos' unloaded latency equal Multi-Paxos' in Fig. 15.
"""

from repro.bench import Table, format_us
from repro.core import (
    FLOW_END,
    DfiRuntime,
    Endpoint,
    FlowOptions,
    Optimization,
    Ordering,
    Schema,
)
from repro.simnet import Cluster

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))
TUPLES = 300


def one_way_latency(ordering):
    cluster = Cluster(node_count=4)
    dfi = DfiRuntime(cluster)
    dfi.init_replicate_flow(
        "rep", [Endpoint(1, 0)], [Endpoint(2, 0), Endpoint(3, 0)],
        SCHEMA, optimization=Optimization.LATENCY, ordering=ordering,
        options=FlowOptions(multicast=True, target_segments=64,
                            credit_threshold=16))
    latencies = []
    send_times = {}

    def source_thread(env):
        source = yield from dfi.open_source("rep", 0)
        for i in range(TUPLES):
            send_times[i] = env.now
            yield from source.push((i, i))
            yield env.timeout(3_000)  # paced, unloaded
        yield from source.close()

    def target_thread(index):
        target = yield from dfi.open_target("rep", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                return
            if index == 0:
                latencies.append(
                    cluster.env.now - send_times[item[0]])

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(0))
    cluster.env.process(target_thread(1))
    cluster.run()
    ordered = sorted(latencies)
    return ordered[len(ordered) // 2]


def run_pair():
    return {
        "unordered": one_way_latency(Ordering.NONE),
        "ordered": one_way_latency(Ordering.GLOBAL),
    }


def test_ablation_sequencer(benchmark, report):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    cluster = Cluster(node_count=2)
    rtt = 2 * cluster.profile.wire_latency
    table = Table("ablation_sequencer",
                  "Tuple sequencer cost (replicate flow, per-tuple)",
                  ["ordering", "median delivery latency"])
    table.add_row("none", format_us(results["unordered"]))
    table.add_row("global (sequencer)", format_us(results["ordered"]))
    overhead = results["ordered"] - results["unordered"]
    table.note(f"sequencer adds {overhead / 1e3:.2f} us "
               f"(one fetch-and-add round trip ~ {rtt / 1e3:.2f} us)")
    report(table)
    assert results["ordered"] > results["unordered"]
    assert 0.5 * rtt < overhead < 3 * rtt
