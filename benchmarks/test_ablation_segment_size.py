"""Ablation — segment size: the bandwidth/latency trade-off the paper
describes in Section 5.1 ("the segment size is a tuning parameter that
allows DFI to either optimize for bandwidth or latency").

Expected: larger segments improve bandwidth (amortized per-segment costs)
but delay the first tuple (batching delay); small segments approach the
latency-optimized behaviour.
"""

from repro.bench import Table, format_gib_s
from repro.bench.flows import measure_shuffle_bandwidth
from repro.core import FlowOptions

SEGMENT_SIZES = (512, 2048, 8192, 32768)


def run_sweep():
    results = {}
    for segment_size in SEGMENT_SIZES:
        options = FlowOptions(segment_size=segment_size)
        m = measure_shuffle_bandwidth(64, 1, total_bytes=2 << 20,
                                      options=options)
        results[segment_size] = m.bytes_per_ns
    return results


def test_ablation_segment_size(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("ablation_segment_size",
                  "Shuffle bandwidth vs segment size (64 B tuples, 1:8)",
                  ["segment size", "sender bandwidth"])
    for segment_size in SEGMENT_SIZES:
        table.add_row(f"{segment_size} B",
                      format_gib_s(results[segment_size]))
    table.note("8 KiB is the paper's default: larger segments amortize "
               "per-segment costs; gains flatten once per-tuple CPU "
               "dominates")
    report(table)
    assert results[8192] > results[512]  # batching pays off
    # Diminishing returns: 4x the default gains little.
    assert results[32768] < results[8192] * 1.5
