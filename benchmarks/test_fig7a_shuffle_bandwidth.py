"""Fig. 7a — shuffle-flow sender bandwidth (1:8), bandwidth-optimized.

Paper shape: one source thread is CPU-bound for small tuples (~3-4 GiB/s
at 64 B); two threads saturate the 11.64 GiB/s link for tuples > 128 B;
four threads reach the maximum for every tuple size.
"""

from repro.bench import Table, format_gib_s
from repro.bench.flows import measure_shuffle_bandwidth
from repro.common.units import GIB, SECONDS, gbps_to_bytes_per_ns

TUPLE_SIZES = (64, 256, 1024)
SOURCE_THREADS = (1, 2, 4)
LINK = gbps_to_bytes_per_ns(100.0)


def run_sweep():
    results = {}
    for tuple_size in TUPLE_SIZES:
        for threads in SOURCE_THREADS:
            m = measure_shuffle_bandwidth(tuple_size, threads,
                                          total_bytes=4 << 20)
            results[(tuple_size, threads)] = m.bytes_per_ns
    return results


def test_fig7a_shuffle_bandwidth(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig7a", "Shuffle flow sender bandwidth (1:8)",
                  ["tuple size", "1 source", "2 sources", "4 sources"])
    for tuple_size in TUPLE_SIZES:
        table.add_row(f"{tuple_size} B",
                      *(format_gib_s(results[(tuple_size, t)])
                        for t in SOURCE_THREADS))
    table.note(f"max link speed: {LINK * SECONDS / GIB:.2f} GiB/s")
    table.note("paper: 1 thread CPU-bound at 64 B; >=2 threads reach the "
               "link for >128 B tuples; 4 threads reach it for all sizes")
    report(table)
    # Shape checks mirroring the paper's claims.
    assert results[(64, 1)] < 0.5 * LINK
    assert results[(256, 2)] > 0.85 * LINK
    assert results[(1024, 4)] > 0.85 * LINK
    assert results[(64, 4)] > results[(64, 1)] * 2
