"""Fig. 8a — replicate flow, naive one-sided replication (1:8):
aggregated receiver bandwidth.

Paper shape: the sender's outgoing link is the bottleneck — the aggregate
receive bandwidth is capped by ~1x link speed no matter how many source
threads or how large the tuples.
"""

from repro.bench import Table, format_gib_s
from repro.bench.flows import measure_replicate_bandwidth
from repro.common.units import GIB, SECONDS, gbps_to_bytes_per_ns

TUPLE_SIZES = (64, 256, 1024)
SOURCE_THREADS = (1, 2, 4)
LINK = gbps_to_bytes_per_ns(100.0)


def run_sweep():
    results = {}
    for tuple_size in TUPLE_SIZES:
        for threads in SOURCE_THREADS:
            m = measure_replicate_bandwidth(
                tuple_size, threads, multicast=False,
                total_bytes=1 << 20)
            results[(tuple_size, threads)] = m.bytes_per_ns
    return results


def test_fig8a_replicate_naive(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig8a",
                  "Replicate flow aggregated receiver BW (naive, 1:8)",
                  ["tuple size", "1 source", "2 sources", "4 sources"])
    for tuple_size in TUPLE_SIZES:
        table.add_row(f"{tuple_size} B",
                      *(format_gib_s(results[(tuple_size, t)])
                        for t in SOURCE_THREADS))
    table.note(f"sender link: {LINK * SECONDS / GIB:.2f} GiB/s — the "
               "naive replication is limited by the sender's uplink")
    report(table)
    # The aggregate receive bandwidth never beats the single sender link
    # by much: all 8 copies share the uplink.
    for key, bandwidth in results.items():
        assert bandwidth < 1.25 * LINK, key
    assert results[(1024, 4)] > 0.7 * LINK
