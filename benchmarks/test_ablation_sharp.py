"""Extension bench — SHARP-style in-network aggregation (the future work
of paper Sections 4.2.3 / 6.1.3): with the reduction inside the switch,
the combiner flow's aggregated sender bandwidth is no longer capped by
the target's in-going link (the limit visible throughout Fig. 9).
"""

from repro.bench import Table, format_gib_s
from repro.common.units import GIB, SECONDS, gbps_to_bytes_per_ns
from repro.core import AggregationSpec, DfiRuntime, FlowOptions, Schema
from repro.simnet import Cluster

SCHEMA = Schema(("group", "uint64"), ("value", "int64"))
LINK = gbps_to_bytes_per_ns(100.0)
THREADS = (1, 2, 4)


def combiner_bandwidth(in_network: bool, threads_per_sender: int) -> float:
    cluster = Cluster(node_count=9)
    dfi = DfiRuntime(cluster)
    sources = [f"node{i + 1}|{t}" for i in range(8)
               for t in range(threads_per_sender)]
    dfi.init_combiner_flow(
        "agg", sources=sources, target="node0|0", schema=SCHEMA,
        aggregation=AggregationSpec("sum", "group", "value"),
        options=FlowOptions(in_network_aggregation=in_network,
                            source_segments=4, target_segments=16,
                            credit_threshold=8))
    per_source = (3 << 20) // SCHEMA.tuple_size // len(sources)
    window = {"start": None, "end": None}

    def source_thread(index):
        source = yield from dfi.open_source("agg", index)
        if window["start"] is None:
            window["start"] = cluster.now
        for i in range(per_source):
            yield from source.push((i % 64, 1))
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("agg")
        yield from target.consume_all()
        window["end"] = cluster.now

    for index in range(len(sources)):
        cluster.env.process(source_thread(index))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    payload = per_source * len(sources) * SCHEMA.tuple_size
    return payload / (window["end"] - window["start"])


def run_sweep():
    return {(mode, threads): combiner_bandwidth(mode, threads)
            for mode in (False, True) for threads in THREADS}


def test_ablation_sharp(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("ablation_sharp",
                  "Combiner flow (SUM, 8:1): end-host vs in-network",
                  ["threads/sender", "end-host (Fig. 9)",
                   "in-network (SHARP)"])
    for threads in THREADS:
        table.add_row(threads,
                      format_gib_s(results[(False, threads)]),
                      format_gib_s(results[(True, threads)]))
    table.note(f"target in-link: {LINK * SECONDS / GIB:.2f} GiB/s caps the "
               "end-host combiner; switch-side reduction lifts the cap")
    report(table)
    for threads in THREADS:
        assert results[(False, threads)] < 1.05 * LINK  # Fig. 9 cap
    assert results[(True, 2)] > 1.5 * LINK  # the extension's headline
    assert results[(True, 4)] > results[(False, 4)] * 1.5
