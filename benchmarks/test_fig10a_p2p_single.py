"""Fig. 10a — single-threaded point-to-point transfer of a fixed table:
MPI Send/Recv vs. DFI (bandwidth- and latency-optimized).

Paper shape: MPI's per-message overhead with no batching makes small
tuples catastrophically slow; DFI bandwidth-optimized is flat and fast
across tuple sizes; DFI latency-optimized sits in between for small
tuples and converges for large ones.

Scaling: the paper moves a 16 GiB table; we move 8 MiB (runtime scales
linearly with table size at fixed tuple size, so ratios are preserved).
"""

from repro.bench import Table
from repro.bench.mpi_compare import dfi_p2p_runtime, mpi_p2p_runtime
from repro.core.flowdef import Optimization

TUPLE_SIZES = (16, 64, 256, 1024, 4096, 16384)
TABLE_BYTES = 8 << 20


def run_sweep():
    results = {}
    for size in TUPLE_SIZES:
        results[("mpi", size)] = mpi_p2p_runtime(size, TABLE_BYTES)
        results[("dfi_bw", size)] = dfi_p2p_runtime(
            size, TABLE_BYTES, optimization=Optimization.BANDWIDTH)
        results[("dfi_lat", size)] = dfi_p2p_runtime(
            size, TABLE_BYTES, optimization=Optimization.LATENCY)
    return results


def test_fig10a_p2p_single_threaded(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig10a",
                  "Point-to-point runtime, 8 MiB table (paper: 16 GiB)",
                  ["tuple size", "DFI bandwidth-opt", "DFI latency-opt",
                   "MPI Send/Recv"])
    for size in TUPLE_SIZES:
        table.add_row(f"{size} B",
                      f"{results[('dfi_bw', size)] / 1e6:9.2f} ms",
                      f"{results[('dfi_lat', size)] / 1e6:9.2f} ms",
                      f"{results[('mpi', size)] / 1e6:9.2f} ms")
    table.note("paper: MPI explodes for small tuples (no batching); DFI "
               "bandwidth-opt is flat; DFI latency-opt between the two")
    report(table)
    # MPI is far slower than DFI bandwidth-opt for tiny tuples...
    assert results[("mpi", 16)] > 5 * results[("dfi_bw", 16)]
    # ...and converges within a small factor for large ones.
    assert results[("mpi", 16384)] < 3 * results[("dfi_bw", 16384)]
    # DFI latency-opt sits between MPI and DFI bandwidth-opt at 16 B.
    assert (results[("dfi_bw", 16)] < results[("dfi_lat", 16)]
            < results[("mpi", 16)])
    # DFI bandwidth-opt stays within one order of magnitude across tuple
    # sizes (the residual slope is the single sender thread's per-tuple
    # CPU, visible in the paper's Fig. 10a as well).
    assert results[("dfi_bw", 16)] < 8 * results[("dfi_bw", 16384)]
