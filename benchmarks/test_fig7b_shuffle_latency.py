"""Fig. 7b — median round-trip latency of latency-optimized shuffle flows
vs. the raw-verbs ib_write_lat baseline.

Paper shape: DFI adds only minimal overhead over ib_write_lat; more
targets cost slightly more (internal routing); RTT grows with tuple size.
"""

from repro.apps.perftest import ib_write_lat
from repro.bench import Table, format_us
from repro.bench.flows import measure_shuffle_rtt
from repro.simnet import Cluster

TUPLE_SIZES = (16, 64, 256, 1024, 4096, 16384)
TARGET_COUNTS = (1, 4, 8)


def median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def run_sweep():
    results = {}
    for size in TUPLE_SIZES:
        for targets in TARGET_COUNTS:
            results[("dfi", size, targets)] = median(
                measure_shuffle_rtt(size, targets, iterations=60))
        results[("raw", size)] = median(
            ib_write_lat(Cluster(node_count=2), size=size, iterations=60))
    return results


def test_fig7b_shuffle_latency(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig7b", "Shuffle flow median RTT vs ib_write_lat",
                  ["tuple size", "DFI N=1", "DFI N=4", "DFI N=8",
                   "ib_write_lat"])
    for size in TUPLE_SIZES:
        table.add_row(f"{size} B",
                      *(format_us(results[("dfi", size, n)])
                        for n in TARGET_COUNTS),
                      format_us(results[("raw", size)]))
    table.note("paper: DFI adds only minimal overhead over ib_write_lat; "
               "multiple targets slightly higher due to routing")
    report(table)
    for size in TUPLE_SIZES:
        dfi1 = results[("dfi", size, 1)]
        raw = results[("raw", size)]
        assert dfi1 < 2.5 * raw  # minimal overhead over raw verbs
        assert results[("dfi", size, 8)] >= dfi1 * 0.9
    assert results[("dfi", 16384, 1)] > results[("dfi", 16, 1)]
