"""Fig. 11 — streaming (pipelined) shuffling, 8:8: MPI_Alltoall in
mini-batches of 8 tuples vs. a DFI shuffle flow.

Paper shape: per-collective overhead makes MPI's runtime explode for
small tuples; as the tuple size grows (mini-batch bytes grow with it),
MPI's bandwidth approaches DFI's.
"""

from repro.bench import Table
from repro.bench.mpi_compare import (
    dfi_shuffle_88_runtime,
    mpi_alltoall_pipelined_runtime,
)
from repro.common.units import GIB, SECONDS

TUPLE_SIZES = (16, 64, 256, 1024, 4096, 16384)
TABLE_BYTES = 8 << 20


def run_sweep():
    results = {}
    for size in TUPLE_SIZES:
        results[("mpi", size)] = mpi_alltoall_pipelined_runtime(
            size, TABLE_BYTES)
        results[("dfi", size)] = dfi_shuffle_88_runtime(size, TABLE_BYTES)
    return results


def test_fig11_collective_pipelined(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table("fig11",
                  "Streaming shuffle 8:8, 8 MiB table, mini-batches of 8",
                  ["tuple size", "DFI runtime", "MPI runtime",
                   "DFI bandwidth", "MPI bandwidth"])
    for size in TUPLE_SIZES:
        dfi_ns, mpi_ns = results[("dfi", size)], results[("mpi", size)]
        table.add_row(
            f"{size} B",
            f"{dfi_ns / 1e6:9.2f} ms", f"{mpi_ns / 1e6:9.2f} ms",
            f"{TABLE_BYTES / dfi_ns * SECONDS / GIB:7.2f} GiB/s",
            f"{TABLE_BYTES / mpi_ns * SECONDS / GIB:7.2f} GiB/s")
    table.note("paper: MPI collective overhead dominates small tuples; "
               "bandwidths converge as tuple size grows")
    report(table)
    assert results[("mpi", 16)] > 10 * results[("dfi", 16)]
    ratio_small = results[("mpi", 16)] / results[("dfi", 16)]
    ratio_large = results[("mpi", 16384)] / results[("dfi", 16384)]
    assert ratio_large < ratio_small / 3  # convergence with tuple size
