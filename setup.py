"""Legacy setup shim: the offline environment ships a setuptools without
the wheel package, so `pip install -e .` falls back to this file."""
from setuptools import setup

setup()
