#!/usr/bin/env python3
"""Distributed joins on DFI flows (paper Section 4.3.1 / Figure 2).

Runs the three join implementations on the same relations and prints
their phase breakdowns:

  * the DFI radix hash join (two shuffle flows, radix routing);
  * the MPI radix join baseline (histogram pass + bulk exchange + barrier);
  * the fragment-and-replicate join (replicate flow for the inner table)
    on a workload with a small inner relation.

Run:  python examples/distributed_join.py [--size N]
"""

import argparse

from repro.apps.join import (
    run_dfi_radix_join,
    run_dfi_replicate_join,
    run_mpi_radix_join,
)
from repro.core import FlowOptions
from repro.simnet import Cluster
from repro.workloads import generate_relation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=200_000,
                        help="tuples per relation (default 200k)")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--workers-per-node", type=int, default=4)
    args = parser.parse_args()

    inner = generate_relation(args.size, unique=True, seed=1)
    outer = generate_relation(args.size, key_range=args.size, seed=2)
    options = FlowOptions(segment_size=1024, source_segments=8,
                          target_segments=8, credit_threshold=4)

    print(f"equi-join of {args.size:,} x {args.size:,} 16-byte tuples on "
          f"{args.nodes} nodes x {args.workers_per_node} workers\n")

    dfi = run_dfi_radix_join(Cluster(node_count=args.nodes), inner, outer,
                             workers_per_node=args.workers_per_node,
                             options=options)
    print(f"DFI radix join      — {dfi.matches:,} matches")
    print(dfi.phase_table(), "\n")

    mpi = run_mpi_radix_join(Cluster(node_count=args.nodes), inner, outer,
                             ranks_per_node=args.workers_per_node)
    print(f"MPI radix join      — {mpi.matches:,} matches")
    print(mpi.phase_table(), "\n")

    small_inner = generate_relation(max(1, args.size // 100), unique=True,
                                    seed=3)
    skewed_outer = generate_relation(args.size,
                                     key_range=max(1, args.size // 100),
                                     seed=4)
    fr = run_dfi_replicate_join(Cluster(node_count=args.nodes),
                                small_inner, skewed_outer,
                                workers_per_node=args.workers_per_node)
    print(f"Replicate join      — {fr.matches:,} matches "
          f"(inner 100x smaller)")
    print(fr.phase_table())
    print(f"\nDFI vs MPI radix join speedup: "
          f"{mpi.runtime / dfi.runtime:.2f}x")


if __name__ == "__main__":
    main()
