#!/usr/bin/env python3
"""A tour of the three DFI flow types and their declarative options
(paper Table 1): shuffle, replicate (with switch multicast and global
ordering), and combiner (with SUM aggregation).

Run:  python examples/flow_types_tour.py
"""

from repro import (
    AggregationSpec,
    Cluster,
    DfiRuntime,
    FLOW_END,
    FlowOptions,
    Optimization,
    Ordering,
    Schema,
)

SCHEMA = Schema(("key", "uint64"), ("value", "uint64"))


def demo_shuffle() -> None:
    """N:M shuffle with a custom routing function (range partitioning),
    batched end-to-end: ``push_batch`` on the sources, ``consume_batch``
    on the targets — the fast path on both sides of the wire."""
    print("=== shuffle flow (2 sources -> 2 targets, range routing, "
          "batched) ===")
    cluster = Cluster(node_count=4)
    dfi = DfiRuntime(cluster)
    dfi.init_shuffle_flow(
        "shuffle", ["node0|0", "node1|0"], ["node2|0", "node3|0"], SCHEMA,
        routing=lambda values, count: 0 if values[0] < 50 else 1)
    received = {0: [], 1: []}
    batches = {0: 0, 1: 0}

    def source(index):
        src = yield from dfi.open_source("shuffle", index)
        # One call routes, packs and ships the whole batch (the router
        # partitions it across both targets).
        yield from src.push_batch([(i, index) for i in range(100)])
        yield from src.close()

    def target(index):
        tgt = yield from dfi.open_target("shuffle", index)
        while (batch := (yield from tgt.consume_batch())) is not FLOW_END:
            # A batch holds everything available now: all consumable
            # segments of every ready channel, possibly spanning sources.
            received[index].extend(batch)
            batches[index] += 1

    for i in range(2):
        cluster.env.process(source(i))
        cluster.env.process(target(i))
    cluster.run()
    print(f"  target 0 holds keys < 50:  {len(received[0])} tuples in "
          f"{batches[0]} batches, max key {max(k for k, _ in received[0])}")
    print(f"  target 1 holds keys >= 50: {len(received[1])} tuples in "
          f"{batches[1]} batches, min key {min(k for k, _ in received[1])}\n")


def demo_ordered_replicate() -> None:
    """Globally-ordered multicast replication: every target sees the same
    interleaving of two sources' tuples (the consensus building block)."""
    print("=== replicate flow (2 sources -> 3 targets, multicast + "
          "global ordering) ===")
    cluster = Cluster(node_count=5)
    dfi = DfiRuntime(cluster)
    dfi.init_replicate_flow(
        "replica", ["node0|0", "node1|0"],
        ["node2|0", "node3|0", "node4|0"], SCHEMA,
        optimization=Optimization.LATENCY, ordering=Ordering.GLOBAL,
        options=FlowOptions(multicast=True))
    orders = {i: [] for i in range(3)}

    def source(index):
        src = yield from dfi.open_source("replica", index)
        for i in range(50):
            yield from src.push((index * 1000 + i, i))
        yield from src.close()

    def target(index):
        tgt = yield from dfi.open_target("replica", index)
        while (item := (yield from tgt.consume())) is not FLOW_END:
            orders[index].append(item[0])

    for i in range(2):
        cluster.env.process(source(i))
    for i in range(3):
        cluster.env.process(target(i))
    cluster.run()
    identical = orders[0] == orders[1] == orders[2]
    print(f"  each target delivered {len(orders[0])} tuples")
    print(f"  all targets saw the identical global order: {identical}")
    print(f"  uplink bytes at source 0: "
          f"{cluster.node(0).uplink.bytes_carried} "
          f"(one copy per segment — the switch replicates)\n")


def demo_combiner() -> None:
    """N:1 combiner flow: a distributed SUM grouped by key — with the
    observability plane on, so the tour ends with a metrics report."""
    print("=== combiner flow (3 sources -> 1 target, SUM group-by) ===")
    cluster = Cluster(node_count=4)
    # Telemetry (docs/observability.md): enable before opening endpoints;
    # the simulated results are bit-identical either way.
    cluster.enable_observability()
    dfi = DfiRuntime(cluster)
    dfi.init_combiner_flow(
        "sum", ["node1|0", "node2|0", "node3|0"], "node0|0", SCHEMA,
        aggregation=AggregationSpec("sum", group_by="key", value="value"))
    result = {}

    def source(index):
        src = yield from dfi.open_source("sum", index)
        for i in range(300):
            yield from src.push((i % 4, 1))
        yield from src.close()

    def target(env):
        tgt = yield from dfi.open_target("sum")
        aggregates = yield from tgt.consume_all()
        result.update(aggregates)

    for i in range(3):
        cluster.env.process(source(i))
    cluster.env.process(target(cluster.env))
    cluster.run()
    print(f"  SUM(value) GROUP BY key over 900 tuples: {result}\n")

    # What the telemetry plane saw: per-node flow counters plus the
    # always-on NIC/link/fabric tallies, as one text table.
    from repro.obs import render_report
    print(render_report(cluster.metrics_snapshot()))


if __name__ == "__main__":
    demo_shuffle()
    demo_ordered_replicate()
    demo_combiner()
