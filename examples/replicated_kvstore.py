#!/usr/bin/env python3
"""Replicated key-value store via consensus on DFI flows
(paper Section 4.3.2 / Figure 3).

Runs the same YCSB-B workload against three replicated KV stores —
Multi-Paxos on four DFI flows, NOPaxos on a globally-ordered replicate
flow, and the DARE baseline on raw verbs — and prints the latency /
throughput comparison behind the paper's Fig. 15.

Run:  python examples/replicated_kvstore.py [--rate REQS_PER_SEC]
"""

import argparse

from repro.apps.consensus import run_dare, run_multipaxos, run_nopaxos
from repro.apps.consensus.driver import ConsensusSetup
from repro.simnet import Cluster


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=400_000,
                        help="aggregate offered load, requests/s")
    parser.add_argument("--duration-ms", type=float, default=4.0,
                        help="measured interval in simulated ms")
    args = parser.parse_args()

    setup = ConsensusSetup(offered_rate=args.rate,
                           duration=args.duration_ms * 1e6,
                           warmup=1e6)
    print(f"5 replicas, 6 clients, YCSB-B (95% reads), 64 B requests, "
          f"offered load {args.rate / 1e6:.2f} M req/s\n")
    print(f"{'protocol':<12} {'median':>10} {'p95':>10} {'p99':>10} "
          f"{'achieved':>12}")
    for runner in (run_multipaxos, run_nopaxos, run_dare):
        result = runner(Cluster(node_count=8), setup)
        print(f"{result.protocol:<12} "
              f"{result.median_latency / 1e3:9.1f}us "
              f"{result.p95_latency / 1e3:9.1f}us "
              f"{result.p99_latency / 1e3:9.1f}us "
              f"{result.achieved_rate / 1e6:9.2f}M/s")
    print("\npaper Fig. 15: both DFI implementations beat DARE in "
          "throughput and latency; Multi-Paxos and NOPaxos are "
          "near-identical below saturation.")


if __name__ == "__main__":
    main()
