#!/usr/bin/env python3
"""In-network aggregation (SHARP) — the paper's future-work extension.

Runs the same distributed SUM twice: once as a plain combiner flow (the
paper's Fig. 9 setup, capped by the target's in-going link) and once with
the reduction inside the switch. Prints both bandwidths and the switch's
data-reduction factor.

Run:  python examples/in_network_aggregation.py
"""

from repro import AggregationSpec, Cluster, DfiRuntime, FlowOptions, Schema
from repro.common.units import GIB, SECONDS, gbps_to_bytes_per_ns

SCHEMA = Schema(("group", "uint64"), ("value", "int64"))
SENDER_NODES = 8
THREADS = 4
TUPLES_PER_SOURCE = 20_000


def run(in_network: bool):
    cluster = Cluster(node_count=SENDER_NODES + 1)
    dfi = DfiRuntime(cluster)
    sources = [f"node{i + 1}|{t}" for i in range(SENDER_NODES)
               for t in range(THREADS)]
    dfi.init_combiner_flow(
        "agg", sources=sources, target="node0|0", schema=SCHEMA,
        aggregation=AggregationSpec("sum", "group", "value"),
        options=FlowOptions(in_network_aggregation=in_network))
    window = {"start": None, "end": None}
    final = {}
    holder = {}

    def source_thread(index):
        source = yield from dfi.open_source("agg", index)
        if window["start"] is None:
            window["start"] = cluster.now
        for i in range(TUPLES_PER_SOURCE):
            yield from source.push((i % 32, 1))
        yield from source.close()

    def target_thread(env):
        target = yield from dfi.open_target("agg")
        holder["target"] = target
        result = yield from target.consume_all()
        final.update(result)
        window["end"] = cluster.now

    for index in range(len(sources)):
        cluster.env.process(source_thread(index))
    cluster.env.process(target_thread(cluster.env))
    cluster.run()
    payload = len(sources) * TUPLES_PER_SOURCE * SCHEMA.tuple_size
    bandwidth = payload / (window["end"] - window["start"])
    return bandwidth, final, holder["target"]


def main() -> None:
    link = gbps_to_bytes_per_ns(100.0)
    expected = {g: SENDER_NODES * THREADS * TUPLES_PER_SOURCE // 32
                for g in range(32)}

    print(f"distributed SUM over {SENDER_NODES}x{THREADS} sender threads, "
          f"{TUPLES_PER_SOURCE:,} tuples each\n")
    bw_host, result_host, _target = run(in_network=False)
    assert result_host == expected
    print(f"end-host combiner (paper Fig. 9): "
          f"{bw_host * SECONDS / GIB:6.2f} GiB/s "
          f"(target in-link: {link * SECONDS / GIB:.2f} GiB/s)")

    bw_sharp, result_sharp, target = run(in_network=True)
    assert result_sharp == expected
    stats = target.switch_stats
    print(f"in-network (SHARP) combiner:      "
          f"{bw_sharp * SECONDS / GIB:6.2f} GiB/s "
          f"({bw_sharp / bw_host:.1f}x)")
    print(f"switch reduction: {stats['bytes_in']:,} B in -> "
          f"{stats['bytes_out']:,} B out "
          f"({stats['reduction']:.0f}x less inbound traffic at the target)")


if __name__ == "__main__":
    main()
