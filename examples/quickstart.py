#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 example, executable.

A shuffle flow from one source thread to two target threads on different
nodes: tuples are pushed with a shuffle key, DFI routes them to the
targets by hashing the key, targets consume until FLOW_END.

Run:  python examples/quickstart.py
"""

from repro import Cluster, DfiRuntime, FLOW_END, Schema


def main() -> None:
    # An 8-node InfiniBand-like cluster behind one switch (simulated).
    cluster = Cluster(node_count=3)
    dfi = DfiRuntime(cluster)

    # Flow initialization (paper Fig. 1): name, sources, targets, schema,
    # shuffle key. Endpoints are "node|thread" strings.
    schema = Schema(("key", "uint64"), ("value", "uint64"))
    dfi.init_shuffle_flow("quickstart",
                          sources=["node0|0"],
                          targets=["node1|0", "node2|0"],
                          schema=schema,
                          shuffle_key="key")

    # Flow execution: a source thread pushes tuples...
    def source_thread(env):
        source = yield from dfi.open_source("quickstart", 0)
        for key, value in [(0, 20), (2, 30), (3, 20), (7, 40)]:
            yield from source.push((key, value))
            print(f"[{env.now:8.1f} ns] source pushed  ({key}, {value})")
        yield from source.close()

    # ... and each target thread consumes its partition.
    def target_thread(env, index):
        target = yield from dfi.open_target("quickstart", index)
        while True:
            item = yield from target.consume()
            if item is FLOW_END:
                print(f"[{env.now:8.1f} ns] target {index} saw FLOW_END")
                return
            print(f"[{env.now:8.1f} ns] target {index} consumed {item}")

    cluster.env.process(source_thread(cluster.env))
    cluster.env.process(target_thread(cluster.env, 0))
    cluster.env.process(target_thread(cluster.env, 1))
    cluster.run()
    print(f"\nsimulation finished at t = {cluster.now / 1e3:.2f} us")


if __name__ == "__main__":
    main()
